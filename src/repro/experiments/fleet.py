"""Multi-process sharded proxy fleet (``python -m repro scale --workers N``).

:mod:`repro.experiments.scale` measures the serving core one process at
a time; real deployments scale *out* — N proxy processes, each owning a
disjoint slice of the user population.  This module is that fleet:

* **Consistent-hash sharding** — users map onto workers through a
  blake2b hash ring with virtual nodes (:class:`ConsistentHashRing`),
  so growing the fleet from N to N+1 workers remaps only ~1/(N+1) of
  the users instead of reshuffling everyone.  Python's builtin
  ``hash()`` is salted per process and useless here; blake2b keys are
  stable across processes and runs.

* **One global arrival schedule, partitioned per shard** — the
  supervisor pre-draws the full open-loop Poisson process with the run
  seed (:func:`~repro.experiments.scale.build_arrival_schedule`), then
  splits it by owning shard while accumulating inter-arrival deltas
  (:func:`partition_schedule`).  Every worker replays exactly the
  arrival instants the single-process harness would have produced:
  sharding changes *where* a user is served, never *when*.  With
  ``--workers 1`` the partition is the identity, which makes the fleet
  byte-equivalent to the serial path — the differential oracle
  ``tests/test_experiments_fleet.py`` pins.

* **Batched fold-back** — each worker sends ONE message when its serve
  phase ends: its metrics row, its full
  :meth:`~repro.metrics.registry.MetricRegistry.snapshot`, and its
  trace ring.  The supervisor folds the registries with
  :meth:`~repro.metrics.registry.MetricRegistry.merge`, absorbs the
  trace rings with :meth:`~repro.metrics.trace.Tracer.absorb`, and
  recomputes the aggregate row with the same helpers the serial
  harness uses — one registry snapshot out, regardless of N.

* **Failure containment** — a supervisor-side monitor aborts the start
  barrier the moment a worker dies before serving, queued error
  payloads surface the worker's traceback, and a join deadline catches
  hung workers; every path raises :class:`FleetWorkerError` naming the
  failed shard's user slice instead of deadlocking the run.

Workers synchronize on a barrier *after* building their deployments,
so the measured fleet wall clock covers serving plus fold-back IPC —
the honest denominator for the scale-out gate in
``benchmarks/test_perf_scale.py`` (≥1.8x requests/wall-s at 4 workers).
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import time
import traceback
from bisect import bisect_right
from hashlib import blake2b
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.cache import ENV_ENABLE
from repro.experiments.parallel import init_worker_env
from repro.experiments.scale import (
    DEFAULT_APPS,
    DEFAULT_RATE_PER_USER,
    ArrivalSchedule,
    _ScaleDeployment,
    build_arrival_schedule,
    miss_causes_from_counters,
    run_scale,
    stage_latency_from_registry,
)
from repro.metrics.perf import PERF
from repro.metrics.registry import MetricRegistry
from repro.metrics.stats import percentile
from repro.metrics.trace import TRACER

#: virtual nodes per shard on the hash ring — enough that the largest
#: shard stays within a few percent of the mean at fleet sizes ≤ 16
DEFAULT_REPLICAS = 64
DEFAULT_WORKER_TIMEOUT_S = 300.0


# ======================================================================
# consistent-hash user sharding
# ======================================================================
def _hash64(key: str) -> int:
    """Stable 64-bit hash (blake2b) — identical in every process."""
    return int.from_bytes(blake2b(key.encode("utf-8"), digest_size=8).digest(), "big")


class ConsistentHashRing:
    """Classic consistent-hash ring over ``shards`` with virtual nodes.

    Each shard owns ``replicas`` points on a 64-bit ring; a key belongs
    to the shard owning the first point clockwise of the key's hash.
    Adding one shard therefore steals roughly ``1/(N+1)`` of the keys
    from the existing N instead of remapping everything — the property
    ``tests/test_experiments_fleet.py`` asserts.
    """

    __slots__ = ("shards", "replicas", "_points", "_owners")

    def __init__(self, shards: int, replicas: int = DEFAULT_REPLICAS) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shards = shards
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                points.append((_hash64("shard:{}:vnode:{}".format(shard, replica)), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def shard_for(self, key: str) -> int:
        index = bisect_right(self._points, _hash64(key)) % len(self._points)
        return self._owners[index]


def shard_users(
    users: int, workers: int, replicas: int = DEFAULT_REPLICAS
) -> List[int]:
    """``assignment[user_index] -> shard`` for the whole population."""
    if workers == 1:
        return [0] * users
    ring = ConsistentHashRing(workers, replicas)
    return [ring.shard_for("u{}".format(index)) for index in range(users)]


def shard_seed(seed: int, shard: int) -> int:
    """Derive a per-shard RNG stream from the run seed, stably."""
    return _hash64("seed:{}:shard:{}".format(seed, shard))


def partition_schedule(
    schedule: ArrivalSchedule, assignment: Sequence[int], workers: int
) -> List[ArrivalSchedule]:
    """Split one global arrival schedule into per-shard schedules.

    Each event's delta is re-expressed relative to the previous event
    *of the same shard* by accumulating the deltas of events routed
    elsewhere, so replaying a shard's schedule reproduces its users'
    global arrival instants exactly (same left-fold float additions).
    Each shard's terminal delta carries it to the same final instant as
    the global schedule, keeping per-worker simulated horizons equal.
    For one worker this is the identity partition — delta for delta the
    input schedule, which is what makes ``--workers 1`` byte-equivalent
    to the serial path.
    """
    events: List[List[Tuple[float, int, Optional[int]]]] = [[] for _ in range(workers)]
    pending = [0.0] * workers
    for dt, user_index, first_position in schedule.events:
        for shard in range(workers):
            pending[shard] = pending[shard] + dt
        shard = assignment[user_index]
        events[shard].append((pending[shard], user_index, first_position))
        pending[shard] = 0.0
    return [
        ArrivalSchedule(
            events[shard],
            pending[shard] + schedule.terminal_dt,
            schedule.users,
            schedule.duration,
            schedule.rate_per_user,
            schedule.seed,
        )
        for shard in range(workers)
    ]


# ======================================================================
# failure surface
# ======================================================================
class FleetWorkerError(RuntimeError):
    """A fleet worker crashed, raised, or hung; names the failed shards."""

    def __init__(self, message: str, shards: Sequence[int] = ()) -> None:
        super().__init__(message)
        self.shards = tuple(shards)


def _shard_members(assignment: Sequence[int], workers: int) -> List[List[int]]:
    members: List[List[int]] = [[] for _ in range(workers)]
    for user_index, shard in enumerate(assignment):
        members[shard].append(user_index)
    return members


def _describe_shard(shard: int, members: Sequence[int]) -> str:
    """``shard 2 (13 users: u2,u5,u9,…)`` — the slice a failure took out."""
    if not members:
        return "shard {} (0 users)".format(shard)
    shown = ",".join("u{}".format(user) for user in members[:5])
    suffix = ",…" if len(members) > 5 else ""
    return "shard {} ({} users: {}{})".format(shard, len(members), shown, suffix)


# ======================================================================
# worker process
# ======================================================================
def _fleet_worker(spec: Dict[str, object], barrier, results) -> None:
    """One shard's serve loop: build, sync, serve, send ONE payload.

    Any exception lands on the result queue as an ``("error", shard,
    traceback)`` message and aborts the barrier so the supervisor wakes
    immediately instead of sleeping out its timeout.  ``inject_failure``
    is the robustness-test hook: ``crash`` dies silently (no message at
    all), ``raise`` fails with a traceback, ``hang`` sleeps through the
    supervisor's deadline.
    """
    shard = int(spec["shard"])
    try:
        failure = spec.get("inject_failure") or {}
        mode = failure.get("mode") if failure.get("shard") == shard else None
        if mode == "crash":
            os._exit(3)
        if mode == "raise":
            raise RuntimeError("injected failure on shard {}".format(shard))
        init_worker_env(spec.get("cache_env"))
        deployment = _ScaleDeployment(tuple(spec["apps"]), **spec["deploy_kwargs"])
        schedule = ArrivalSchedule(
            spec["events"],
            spec["terminal_dt"],
            spec["users"],
            spec["duration"],
            spec["rate_per_user"],
            spec["seed"],
        )
        if mode == "hang":
            # repro-lint: disable=det-wall-clock -- robustness-test hook: the injected hang must outlast the supervisor's real deadline, so a host sleep is the point
            time.sleep(3600.0)
        try:
            barrier.wait(spec["worker_timeout"])
        except threading.BrokenBarrierError:
            # another worker failed (it aborted the barrier) or the
            # supervisor timed the startup out — this worker is only a
            # secondary victim: exit clean so diagnosis blames the
            # shard that actually broke, not this one
            raise SystemExit(0)
        row = run_scale(
            users=int(spec["users"]),
            duration=float(spec["duration"]),
            apps=tuple(spec["apps"]),
            rate_per_user=float(spec["rate_per_user"]),
            seed=int(spec["seed"]),
            access_rtt=float(spec["access_rtt"]),
            trace_sample=spec["trace_sample"],
            trace_seed=int(spec["trace_seed"]),
            trace_capacity=int(spec["trace_capacity"]),
            estimate_expiration=bool(spec["estimate_expiration"]),
            warm_start=bool(spec["warm_start"]),
            arrival_schedule=schedule,
            collect_latencies=True,
            _deployment=deployment,
            **spec["deploy_kwargs"],
        )
        payload = {
            "row": row,
            "registry": PERF.registry.snapshot(),
            "trace_records": TRACER.records() if spec["trace_sample"] is not None else [],
        }
        results.put(("ok", shard, payload))
    except BaseException as error:
        if isinstance(error, SystemExit) and error.code == 0:
            raise
        try:
            results.put(("error", shard, traceback.format_exc()))
        finally:
            try:
                barrier.abort()
            except Exception:
                pass
        raise SystemExit(1)


# ======================================================================
# supervisor
# ======================================================================
def _drain_queue(results, collected: Dict[int, Dict], errors: Dict[int, str]) -> None:
    """Pull whatever the result queue has right now (post-failure sweep)."""
    while True:
        try:
            kind, shard, payload = results.get(timeout=0.2)
        except queue_module.Empty:
            return
        if kind == "ok":
            collected[shard] = payload
        else:
            errors[shard] = payload


def _raise_worker_failure(
    errors: Dict[int, str],
    procs: Sequence,
    collected: Dict[int, Dict],
    members: Sequence[Sequence[int]],
    phase: str,
) -> None:
    """Turn whatever failure evidence exists into one FleetWorkerError."""
    if errors:
        shard = min(errors)
        raise FleetWorkerError(
            "fleet worker failed during {}: {} — worker traceback:\n{}".format(
                phase, _describe_shard(shard, members[shard]), errors[shard]
            ),
            shards=sorted(errors),
        )
    crashed = [
        shard
        for shard, proc in enumerate(procs)
        if shard not in collected and proc.exitcode not in (None, 0)
    ]
    if crashed:
        raise FleetWorkerError(
            "fleet worker crashed during {} (exitcode {}): {}".format(
                phase,
                procs[crashed[0]].exitcode,
                "; ".join(_describe_shard(s, members[s]) for s in crashed),
            ),
            shards=crashed,
        )
    hung = [
        shard
        for shard, proc in enumerate(procs)
        if shard not in collected and proc.is_alive()
    ]
    raise FleetWorkerError(
        "fleet worker hung past the {} deadline: {}".format(
            phase,
            "; ".join(_describe_shard(s, members[s]) for s in hung) or "(unknown)",
        ),
        shards=hung,
    )


def _monitor_procs(procs, barrier, stop: threading.Event) -> None:
    """Abort the start barrier as soon as any worker dies silently."""
    while not stop.is_set():
        for proc in procs:
            if proc.exitcode not in (None, 0):
                try:
                    barrier.abort()
                except Exception:
                    pass
                return
        stop.wait(0.05)


def _merge_int_tables(
    tables: Sequence[Optional[Dict[str, Dict[str, int]]]]
) -> Dict[str, Dict[str, int]]:
    """Sum nested ``{key: {field: int}}`` tables across shards."""
    merged: Dict[str, Dict[str, int]] = {}
    for table in tables:
        for key, cell in (table or {}).items():
            target = merged.setdefault(key, {})
            for field, value in cell.items():
                target[field] = target.get(field, 0) + value
    return merged


def run_fleet(
    users: int,
    duration: float,
    workers: int = 1,
    apps: Sequence[str] = DEFAULT_APPS,
    rate_per_user: float = DEFAULT_RATE_PER_USER,
    seed: int = 0,
    max_entries_per_user: Optional[int] = None,
    max_bytes: Optional[int] = None,
    indexed_cache: bool = True,
    lazy_drain: bool = True,
    access_rtt: float = 0.055,
    trace_path: Optional[str] = None,
    trace_sample: Optional[float] = None,
    trace_seed: int = 0,
    trace_capacity: int = 65_536,
    strategy: str = "appx",
    max_entries_total: Optional[int] = None,
    adaptive_budget: bool = False,
    admission_threshold: Optional[float] = None,
    estimate_expiration: bool = False,
    warm_start: bool = False,
    learn_mode: str = "deferred",
    replicas: int = DEFAULT_REPLICAS,
    worker_timeout: float = DEFAULT_WORKER_TIMEOUT_S,
    prom_path: Optional[str] = None,
    inject_failure: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Serve one seeded scale workload across ``workers`` proxy processes.

    The supervisor consistent-hashes users onto shards, pre-draws the
    global arrival schedule with the run seed, partitions it per shard,
    and hands each worker its slice plus its own cache budget share.
    Workers build their deployments, meet on a barrier, serve, and send
    one batched payload back; the supervisor folds every payload into a
    single aggregate row whose shape matches
    :func:`~repro.experiments.scale.run_scale` plus ``workers``,
    ``fleet``, and ``shards`` keys.

    ``workers=1`` serves inline (no subprocess) replaying the identity
    partition — byte-equivalent to the serial harness under the same
    seed, which the differential tests pin.  For ``workers > 1`` the
    fleet wall clock runs from the post-barrier instant to the last
    payload collected, so requests-per-wall-second pays for fold-back
    IPC too.

    ``worker_timeout`` bounds both the start barrier and the serve
    phase; a worker that crashes, raises, or hangs surfaces as
    :class:`FleetWorkerError` naming the lost shard's user slice.
    ``inject_failure`` (``{"shard": s, "mode": "crash"|"raise"|"hang"}``)
    exists for the robustness tests.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if users < workers:
        raise ValueError(
            "need at least one user per worker (users={}, workers={})".format(
                users, workers
            )
        )
    apps = tuple(apps)
    tracing = trace_path is not None or trace_sample is not None
    effective_sample = 1.0 if trace_sample is None else trace_sample

    deploy_kwargs = {
        "max_entries_per_user": max_entries_per_user,
        "max_bytes": max_bytes,
        "indexed_cache": indexed_cache,
        "lazy_drain": lazy_drain,
        "max_entries_total": max_entries_total,
        "adaptive_budget": adaptive_budget,
        "admission_threshold": admission_threshold,
        "strategy": strategy,
        "learn_mode": learn_mode,
    }

    # the plan deployment provides per-app step counts for the schedule
    # draw; with one worker it also serves the workload inline
    plan = _ScaleDeployment(apps, **deploy_kwargs)
    step_counts = {name: len(steps) for name, steps in plan.steps.items()}
    user_app = [apps[index % len(apps)] for index in range(users)]
    schedule = build_arrival_schedule(
        users,
        duration,
        rate_per_user,
        seed,
        step_counts,
        user_app,
        warm_start=warm_start,
        pred_positions=plan.pred_positions,
    )
    assignment = shard_users(users, workers, replicas)
    members = _shard_members(assignment, workers)
    shard_schedules = partition_schedule(schedule, assignment, workers)

    if workers == 1:
        row = run_scale(
            users=users,
            duration=duration,
            apps=apps,
            rate_per_user=rate_per_user,
            seed=seed,
            access_rtt=access_rtt,
            trace_sample=effective_sample if tracing else None,
            trace_seed=trace_seed,
            trace_capacity=trace_capacity,
            estimate_expiration=estimate_expiration,
            warm_start=warm_start,
            arrival_schedule=shard_schedules[0],
            collect_latencies=True,
            _deployment=plan,
            **deploy_kwargs,
        )
        payloads = {
            0: {
                "row": row,
                "registry": PERF.registry.snapshot(),
                "trace_records": TRACER.records() if tracing else [],
            }
        }
        wall_s = float(row["wall_s"])
    else:
        payloads, wall_s = _run_worker_pool(
            shard_schedules,
            members,
            users=users,
            duration=duration,
            workers=workers,
            apps=apps,
            rate_per_user=rate_per_user,
            seed=seed,
            access_rtt=access_rtt,
            tracing=tracing,
            effective_sample=effective_sample,
            trace_seed=trace_seed,
            trace_capacity=trace_capacity,
            estimate_expiration=estimate_expiration,
            warm_start=warm_start,
            deploy_kwargs=deploy_kwargs,
            max_entries_total=max_entries_total,
            worker_timeout=worker_timeout,
            inject_failure=inject_failure,
        )

    return _aggregate(
        payloads,
        members,
        wall_s=wall_s,
        users=users,
        duration=duration,
        workers=workers,
        apps=apps,
        rate_per_user=rate_per_user,
        seed=seed,
        replicas=replicas,
        worker_timeout=worker_timeout,
        tracing=tracing,
        effective_sample=effective_sample,
        trace_seed=trace_seed,
        trace_capacity=trace_capacity,
        trace_path=trace_path,
        prom_path=prom_path,
        deploy_kwargs=deploy_kwargs,
        schedule_events=len(schedule),
    )


def _run_worker_pool(
    shard_schedules: Sequence[ArrivalSchedule],
    members: Sequence[Sequence[int]],
    users: int,
    duration: float,
    workers: int,
    apps: Sequence[str],
    rate_per_user: float,
    seed: int,
    access_rtt: float,
    tracing: bool,
    effective_sample: float,
    trace_seed: int,
    trace_capacity: int,
    estimate_expiration: bool,
    warm_start: bool,
    deploy_kwargs: Dict[str, object],
    max_entries_total: Optional[int],
    worker_timeout: float,
    inject_failure: Optional[Dict[str, object]],
) -> Tuple[Dict[int, Dict], float]:
    """Spawn, synchronize, and collect the worker fleet (workers > 1)."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()
    results = context.Queue()
    barrier = context.Barrier(workers + 1)
    cache_env = os.environ.get(ENV_ENABLE) or None

    specs = []
    for shard in range(workers):
        shard_kwargs = dict(deploy_kwargs)
        if max_entries_total is not None:
            # apportion the global entry budget by shard population so
            # the fleet's total budget matches the serial run's
            shard_kwargs["max_entries_total"] = max(
                1, round(max_entries_total * len(members[shard]) / users)
            )
        specs.append(
            {
                "shard": shard,
                "apps": list(apps),
                "users": users,
                "duration": duration,
                "rate_per_user": rate_per_user,
                "seed": seed,
                "access_rtt": access_rtt,
                "events": shard_schedules[shard].events,
                "terminal_dt": shard_schedules[shard].terminal_dt,
                "deploy_kwargs": shard_kwargs,
                "trace_sample": effective_sample if tracing else None,
                "trace_seed": shard_seed(trace_seed, shard),
                "trace_capacity": trace_capacity,
                "estimate_expiration": estimate_expiration,
                "warm_start": warm_start,
                "worker_timeout": worker_timeout,
                "cache_env": cache_env,
                "inject_failure": inject_failure,
            }
        )

    procs = [
        context.Process(
            target=_fleet_worker, args=(spec, barrier, results), daemon=True
        )
        for spec in specs
    ]
    collected: Dict[int, Dict] = {}
    errors: Dict[int, str] = {}
    stop_monitor = threading.Event()
    monitor = threading.Thread(
        target=_monitor_procs, args=(procs, barrier, stop_monitor), daemon=True
    )
    try:
        for proc in procs:
            proc.start()
        monitor.start()
        try:
            barrier.wait(worker_timeout)
        except threading.BrokenBarrierError:
            _drain_queue(results, collected, errors)
            _raise_worker_failure(errors, procs, collected, members, "startup")
        wall_started = time.perf_counter()
        deadline = wall_started + worker_timeout
        while len(collected) < workers:
            try:
                kind, shard, payload = results.get(timeout=0.25)
            except queue_module.Empty:
                crashed_silently = any(
                    shard not in collected and proc.exitcode not in (None, 0)
                    for shard, proc in enumerate(procs)
                )
                if crashed_silently or time.perf_counter() > deadline:
                    _drain_queue(results, collected, errors)
                    if len(collected) == workers:
                        break
                    _raise_worker_failure(
                        errors, procs, collected, members, "serve"
                    )
                continue
            if kind == "ok":
                collected[shard] = payload
            else:
                errors[shard] = payload
                _drain_queue(results, collected, errors)
                _raise_worker_failure(errors, procs, collected, members, "serve")
        wall_s = time.perf_counter() - wall_started
    finally:
        stop_monitor.set()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
    return collected, wall_s


def _aggregate(
    payloads: Dict[int, Dict],
    members: Sequence[Sequence[int]],
    wall_s: float,
    users: int,
    duration: float,
    workers: int,
    apps: Sequence[str],
    rate_per_user: float,
    seed: int,
    replicas: int,
    worker_timeout: float,
    tracing: bool,
    effective_sample: float,
    trace_seed: int,
    trace_capacity: int,
    trace_path: Optional[str],
    prom_path: Optional[str],
    deploy_kwargs: Dict[str, object],
    schedule_events: int,
) -> Dict[str, object]:
    """Fold worker payloads into one run_scale-shaped aggregate row."""
    rows = [payloads[shard]["row"] for shard in range(workers)]

    merged = MetricRegistry()
    for shard in range(workers):
        merged.merge(payloads[shard]["registry"])

    latencies: List[float] = []
    for row in rows:
        latencies.extend(row.get("latencies_s") or [])

    def total(key: str) -> int:
        return sum(int(row[key]) for row in rows)

    requests = total("requests")
    served = total("served_prefetched")
    forwarded = total("forwarded")
    answered = served + forwarded
    sim_events = total("sim_events")

    by_signature = _merge_int_tables([row["prefetch_by_signature"] for row in rows])

    expiration_rows = [row["expiration"] for row in rows if row["expiration"]]
    expiration = None
    if expiration_rows:
        expiration = {
            key: sum(int(cell[key]) for cell in expiration_rows)
            for key in ("sites", "converged", "probes_issued", "disabled")
        }

    history = None
    if any(row["history"] for row in rows):
        history = _merge_int_tables([row["history"] for row in rows])

    trace_stats: Optional[Dict[str, object]] = None
    if tracing:
        shard_stats = [row["trace"] or {} for row in rows]
        trace_stats = {
            key: sum(int(stats.get(key, 0)) for stats in shard_stats)
            for key in ("started", "sampled", "finished", "dropped")
        }
        trace_stats["sample_rate"] = effective_sample
        trace_stats["capacity"] = trace_capacity
        # the supervisor ring holds every worker's batch: capacity is
        # the fleet-wide sum so absorption itself never drops records
        TRACER.configure(
            sample_rate=effective_sample,
            capacity=max(1, trace_capacity * workers),
            seed=trace_seed,
        )
        absorbed = 0
        for shard in range(workers):
            absorbed += TRACER.absorb(
                payloads[shard]["trace_records"],
                prefix="w{}".format(shard),
                skip_kinds=("summary",),
            )
        TRACER.append_record(
            {
                "trace_id": "summary",
                "user": "-",
                "kind": "summary",
                "spans": [],
                "tags": {
                    "prefetch_by_signature": by_signature,
                    "workers": workers,
                },
            }
        )
        trace_stats["absorbed"] = absorbed
        trace_stats["buffered"] = len(TRACER.records())
        if trace_path is not None:
            trace_stats["exported"] = TRACER.export_jsonl(trace_path)
            trace_stats["path"] = trace_path

    if prom_path is not None:
        with open(prom_path, "w") as handle:
            handle.write(merged.render_prometheus())

    aggregate: Dict[str, object] = {
        "users": users,
        "workers": workers,
        "apps": list(apps),
        "duration_s": duration,
        "rate_per_user": rate_per_user,
        "seed": seed,
        "requests": requests,
        "requests_sent": total("requests_sent"),
        "wall_s": wall_s,
        "per_request_wall_us": (1e6 * wall_s / requests) if requests else 0.0,
        "requests_per_wall_s": (requests / wall_s) if wall_s else 0.0,
        "sim_events": sim_events,
        "sim_events_per_wall_s": (sim_events / wall_s) if wall_s else 0.0,
        "latency_p50_ms": 1000 * percentile(latencies, 50) if latencies else 0.0,
        "latency_p95_ms": 1000 * percentile(latencies, 95) if latencies else 0.0,
        "latency_p99_ms": 1000 * percentile(latencies, 99) if latencies else 0.0,
        "hit_rate": (served / answered) if answered else 0.0,
        "served_prefetched": served,
        "forwarded": forwarded,
        "prefetch_issued": total("prefetch_issued"),
        # per-shard peaks are not simultaneous; their sum is the upper
        # bound on the fleet-wide peak, matching the budget apportioning
        "peak_cache_entries": total("peak_cache_entries"),
        "final_cache_entries": total("final_cache_entries"),
        "cache_stored": total("cache_stored"),
        "cache_expired_evictions": total("cache_expired_evictions"),
        "cache_lru_evictions": total("cache_lru_evictions"),
        "cache_wheel_purged": total("cache_wheel_purged"),
        "peak_rss_bytes": total("peak_rss_bytes"),
        "indexed_cache": deploy_kwargs["indexed_cache"],
        "lazy_drain": deploy_kwargs["lazy_drain"],
        "max_entries_per_user": deploy_kwargs["max_entries_per_user"],
        "max_bytes": deploy_kwargs["max_bytes"],
        "max_entries_total": deploy_kwargs["max_entries_total"],
        "adaptive_budget": deploy_kwargs["adaptive_budget"],
        "admission_threshold": deploy_kwargs["admission_threshold"],
        "strategy": deploy_kwargs["strategy"],
        "learn_mode": deploy_kwargs["learn_mode"],
        "learn_queue_overflows": total("learn_queue_overflows"),
        "learn_deferred_drained": total("learn_deferred_drained"),
        "prefetch_wasted": total("prefetch_wasted"),
        "skipped_admission": total("skipped_admission"),
        "prefetch_by_signature": by_signature,
        "expiration": expiration,
        "history": history,
        "stage_latency_us": stage_latency_from_registry(merged),
        "miss_causes": miss_causes_from_counters(merged.counters),
        "trace": trace_stats,
        "fleet": {
            "replicas": replicas,
            "hash": "blake2b-64",
            "worker_timeout_s": worker_timeout,
            "schedule_events": schedule_events,
            "shard_users": [len(shard_members) for shard_members in members],
            "shard_requests": [int(row["requests"]) for row in rows],
            "shard_wall_s": [float(row["wall_s"]) for row in rows],
            "supervisor_wall_s": wall_s,
        },
        "shards": [
            {
                "shard": shard,
                "users": len(members[shard]),
                "requests": int(rows[shard]["requests"]),
                "hit_rate": float(rows[shard]["hit_rate"]),
                "wall_s": float(rows[shard]["wall_s"]),
                "sim_events": int(rows[shard]["sim_events"]),
                "peak_rss_bytes": int(rows[shard]["peak_rss_bytes"]),
            }
            for shard in range(workers)
        ],
    }
    return aggregate


def format_fleet_table(rows: Sequence[Dict[str, object]]) -> str:
    """Aligned worker-count sweep table (BENCH + CI artifact)."""
    if not rows:
        return "(no fleet rows)"
    first = rows[0]
    lines = [
        "fleet scale-out: users={} duration={}s rate={}/s apps={} seed={}".format(
            first["users"],
            first["duration_s"],
            first["rate_per_user"],
            ",".join(first["apps"]),
            first["seed"],
        ),
        "{:<8} {:>9} {:>11} {:>11} {:>9} {:>8} {:>9}".format(
            "workers", "requests", "req/wall_s", "us/request", "hit", "p50_ms",
            "speedup",
        ),
    ]
    base = None
    for row in rows:
        rate = float(row["requests_per_wall_s"])
        if base is None:
            base = rate or None
        lines.append(
            "{:<8} {:>9} {:>11.0f} {:>11.1f} {:>7.1f}% {:>8.1f} {:>8}".format(
                row["workers"],
                row["requests"],
                rate,
                float(row["per_request_wall_us"]),
                100.0 * float(row["hit_rate"]),
                float(row["latency_p50_ms"]),
                "{:.2f}x".format(rate / base) if base else "-",
            )
        )
    return "\n".join(lines)
