"""Parallel experiment engine: process-pool scenario fan-out.

Every paper figure is a sweep of independent (app, mode, RTT,
probability, seed) cells that the serial runners in
:mod:`repro.experiments.runner` execute one after another.  This
module decomposes each sweep into its cells (*plan*), executes them
over a :class:`concurrent.futures.ProcessPoolExecutor` (*execute*),
and reassembles the rows in canonical order (*merge*), so the parallel
output is byte-identical to the serial runner's — which therefore
stays around as the differential oracle, exactly like the naive
signature scan does for the indexed dispatch path.

Determinism
-----------
Cells carry every seed explicitly, share no mutable state, and are
dispatched with ``Executor.map`` (order-preserving); merging is pure.
Workers warm their per-app artifacts from the on-disk analysis cache
(:mod:`repro.experiments.cache`) when one is configured — the
``init_worker_env`` initializer exports it via ``REPRO_ANALYSIS_CACHE``
so every ``prepare_app`` call inside the pool hits disk instead of
re-running analysis + verification fuzzing.

Perf accounting
---------------
Each cell can return a :data:`PERF` snapshot taken inside the worker;
the engine folds worker counters, stage timings, and histograms into
the parent's :data:`PERF` (when enabled) under the same names, plus
``experiments.cells`` / ``experiments.parallel_cells`` on the engine
itself.

Break-even fallback
-------------------
Forking a pool costs real wall time (interpreter spawn + imports),
and on small sweeps — or boxes with one core — that overhead exceeds
the fan-out win, making ``jobs>1`` *slower* than serial.  The engine
therefore times the sweep's first cell inline, projects both
schedules with :func:`should_parallelize` (a pure function: serial =
``cost × cells`` vs parallel = spawn + per-cell dispatch + ``cost ×
waves`` across the effective workers, capped by ``os.cpu_count``),
and silently falls back to in-process execution when the pool cannot
pay for itself (``experiments.fallback_serial``).  When it can, the
cells go to a module-level *warm* pool that is kept alive across
sweeps with the same (workers, cache) configuration
(``experiments.pool_reuse``), so only the first parallel sweep pays
the spawn cost.  Either path yields byte-identical rows.
"""

from __future__ import annotations

import atexit
import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps.registry import all_apps
from repro.experiments import runner
from repro.experiments.cache import ENV_ENABLE, AnalysisArtifactCache
from repro.metrics.perf import PERF

#: figures the engine can fan out, with their cell functions
_CELL_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "table3": runner.table3_row,
    "fig13": runner.fig13_row,
    "fig14": runner.fig14_row,
    "fig15": runner.fig15_cell,
    "fig16": runner.fig16_cell,
    "fig17": runner.fig17_cell,
    "fig17_baseline": runner.fig17_baseline,
    "user_study": runner.user_study_run,
}

#: serial oracles, for callers that want the figure by name
SERIAL_RUNNERS: Dict[str, Callable[..., Any]] = {
    "table3": runner.table3_rows,
    "fig13": runner.fig13_main_interaction,
    "fig14": runner.fig14_app_launch,
    "fig15": runner.fig15_percentile_sweep,
    "fig16": runner.fig16_cdf_and_usage,
    "fig17": runner.fig17_probability_tradeoff,
}

PARALLEL_FIGURES: Tuple[str, ...] = (
    "table3",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
)

#: a work unit: (cell-function name, kwargs, capture-perf flag)
WorkUnit = Tuple[str, Dict[str, Any], bool]


# ======================================================================
# plan — decompose a sweep into picklable, independent work units
# ======================================================================
def plan_cells(figure: str, params: Optional[Dict[str, Any]] = None) -> List[WorkUnit]:
    """The figure's cells, in the serial runner's canonical order."""
    params = dict(params or {})
    params.pop("jobs", None)
    capture = bool(params.pop("capture_perf", False))
    apps = params.pop("apps", None)
    app_names = list(apps) if apps is not None else list(all_apps())

    if figure == "table3":
        return [
            ("table3", dict(params, name=name), capture) for name in app_names
        ]
    if figure in ("fig13", "fig14"):
        return [
            (figure, dict(params, name=name), capture) for name in app_names
        ]
    if figure in ("fig15", "fig16"):
        rtts = params.pop("rtts", (0.050, 0.100, 0.150))
        return [
            (figure, dict(params, name=name, rtt=rtt), capture)
            for name in app_names
            for rtt in rtts
        ]
    if figure == "fig17":
        probabilities = params.pop(
            "probabilities", (0.0, 0.25, 0.5, 0.75, 0.9, 1.0)
        )
        cells: List[WorkUnit] = [("fig17_baseline", dict(params), capture)]
        cells.extend(
            ("fig17", dict(params, probability=probability), capture)
            for probability in probabilities
        )
        return cells
    raise ValueError(
        "unknown figure {!r}; choose from {}".format(
            figure, ", ".join(PARALLEL_FIGURES)
        )
    )


def merge_results(figure: str, results: Sequence[Any]) -> Any:
    """Reassemble cell results into the serial runner's row list."""
    if figure == "fig17":
        baseline_bytes, cells = results[0], list(results[1:])
        return runner.fig17_finalize(cells, baseline_bytes)
    return list(results)


# ======================================================================
# execute — the worker side
# ======================================================================
def init_worker_env(cache_env: Optional[str]) -> None:
    """Point a worker process at the supervisor's artifact cache.

    Used as this engine's pool initializer and called directly by the
    sharded proxy fleet's workers (:mod:`repro.experiments.fleet`), so
    any start method — fork or spawn — sees the same
    ``REPRO_ANALYSIS_CACHE`` configuration the parent resolved.
    """
    if cache_env:
        # repro-lint: disable=mp-global-mutation -- pool initializer: mutating the *worker's own* environ before any cell runs is this function's entire job
        os.environ[ENV_ENABLE] = cache_env
    else:
        # repro-lint: disable=mp-global-mutation -- pool initializer: clears stale cache config in the worker before any cell runs
        os.environ.pop(ENV_ENABLE, None)


#: backwards-compatible alias (this began life as the pool initializer)
_worker_init = init_worker_env


def execute_cell(unit: WorkUnit) -> Tuple[Any, Optional[Dict[str, Any]]]:
    """Run one work unit (in a pool worker or inline).

    The perf snapshot is the full :meth:`PerfCounters.snapshot` shape
    (counters + stage ``timings_s`` + histograms), so the parent's
    fold-back keeps worker stage timings instead of dropping them.
    """
    kind, kwargs, capture = unit
    function = _CELL_FUNCTIONS[kind]
    if not capture:
        return function(**kwargs), None
    with PERF.capture() as perf:
        result = function(**kwargs)
        snapshot = perf.snapshot()
    return result, snapshot


# ======================================================================
# break-even projection and the warm shared pool
# ======================================================================
#: assumed pool start-up cost (fork + imports) when no warm pool exists
DEFAULT_SPAWN_COST_S = 0.30
#: assumed per-cell pickle/dispatch/collect overhead
DEFAULT_DISPATCH_COST_S = 0.002

_SHARED_POOL: Optional[ProcessPoolExecutor] = None
_SHARED_POOL_CONFIG: Optional[Tuple[int, Optional[str]]] = None


def effective_workers(jobs: int, cells: int) -> int:
    """Workers that can actually run at once: jobs, cells, cores."""
    return max(1, min(jobs, cells, os.cpu_count() or 1))


def should_parallelize(
    cell_cost_s: float,
    remaining_cells: int,
    workers: int,
    spawn_cost_s: float,
    dispatch_cost_s: float = DEFAULT_DISPATCH_COST_S,
) -> bool:
    """Pure break-even decision: does the pool beat serial execution?

    ``cell_cost_s`` is the measured wall cost of one cell (the sweep's
    first, timed inline); ``remaining_cells`` is how many are left to
    schedule; ``spawn_cost_s`` is zero when a warm pool already exists.
    Projected parallel wall time is spawn + dispatch×cells + cost×waves
    (cells rounded up into waves of ``workers``); serial is cost×cells.
    """
    if remaining_cells <= 1 or workers <= 1:
        return False
    serial_s = cell_cost_s * remaining_cells
    waves = math.ceil(remaining_cells / workers)
    projected_s = (
        spawn_cost_s + dispatch_cost_s * remaining_cells + cell_cost_s * waves
    )
    return projected_s < serial_s


def _shared_pool(
    workers: int, cache_env: Optional[str]
) -> ProcessPoolExecutor:
    """The warm pool for this (workers, cache) config, creating it once."""
    global _SHARED_POOL, _SHARED_POOL_CONFIG
    config = (workers, cache_env)
    if _SHARED_POOL is not None and _SHARED_POOL_CONFIG == config:
        if PERF.enabled:
            PERF.incr("experiments.pool_reuse")
        return _SHARED_POOL
    shutdown_shared_pool()
    _SHARED_POOL = ProcessPoolExecutor(
        max_workers=workers,
        initializer=init_worker_env,
        initargs=(cache_env,),
    )
    _SHARED_POOL_CONFIG = config
    return _SHARED_POOL


def shutdown_shared_pool() -> None:
    """Tear down the warm pool (tests; registered atexit)."""
    global _SHARED_POOL, _SHARED_POOL_CONFIG
    if _SHARED_POOL is not None:
        _SHARED_POOL.shutdown()
    _SHARED_POOL = None
    _SHARED_POOL_CONFIG = None


atexit.register(shutdown_shared_pool)


# ======================================================================
# run — the engine
# ======================================================================
def run_figure(
    figure: str,
    jobs: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    artifact_cache: Optional[AnalysisArtifactCache] = None,
    capture_perf: bool = False,
    force_parallel: bool = False,
) -> Any:
    """Run one figure's sweep, fanned out over ``jobs`` processes.

    ``jobs=None`` or ``jobs <= 1`` executes the cells in-process (still
    through the cell/merge decomposition).  With ``jobs > 1`` the first
    cell runs inline to measure per-cell cost, and the rest go to the
    warm shared pool only when :func:`should_parallelize` projects a
    win — otherwise they run serially too (``force_parallel=True``
    skips the projection; tests use it to exercise the pool path).
    ``artifact_cache`` (or an already-exported ``REPRO_ANALYSIS_CACHE``)
    lets workers load per-app analysis artifacts from disk instead of
    recomputing them.  Output is byte-identical to
    ``SERIAL_RUNNERS[figure](**params)``.
    """
    params = dict(params or {})
    if capture_perf:
        params["capture_perf"] = True
    cells = plan_cells(figure, params)
    if PERF.enabled:
        PERF.incr("experiments.cells", len(cells))

    cache_env = None
    if artifact_cache is not None:
        cache_env = artifact_cache.root
    elif os.environ.get(ENV_ENABLE):
        cache_env = os.environ[ENV_ENABLE]

    if jobs is None or jobs <= 1 or len(cells) <= 1:
        outcomes = [execute_cell(unit) for unit in cells]
    else:
        started_at = time.perf_counter()
        outcomes = [execute_cell(cells[0])]
        cell_cost_s = time.perf_counter() - started_at
        rest = cells[1:]
        pool_workers = max(1, min(jobs, os.cpu_count() or 1))
        warm = (
            _SHARED_POOL is not None
            and _SHARED_POOL_CONFIG == (pool_workers, cache_env)
        )
        go_parallel = force_parallel or should_parallelize(
            cell_cost_s,
            len(rest),
            effective_workers(jobs, len(rest)),
            0.0 if warm else DEFAULT_SPAWN_COST_S,
        )
        if go_parallel:
            if PERF.enabled:
                PERF.incr("experiments.parallel_cells", len(rest))
            pool = _shared_pool(pool_workers, cache_env)
            outcomes.extend(pool.map(execute_cell, rest))
        else:
            if PERF.enabled:
                PERF.incr("experiments.fallback_serial")
            outcomes.extend(execute_cell(unit) for unit in rest)

    results = [result for result, _ in outcomes]
    if PERF.enabled:
        for _, snapshot in outcomes:
            if snapshot:
                PERF.merge(snapshot)
    return merge_results(figure, results)


def run_figures(
    figures: Sequence[str],
    jobs: Optional[int] = None,
    params_by_figure: Optional[Dict[str, Dict[str, Any]]] = None,
    artifact_cache: Optional[AnalysisArtifactCache] = None,
    capture_perf: bool = False,
    force_parallel: bool = False,
) -> Dict[str, Any]:
    """Run several figures; returns ``{figure: rows}`` in input order.

    Sweeps share the warm pool, so a multi-figure run pays at most one
    pool spawn.
    """
    params_by_figure = params_by_figure or {}
    return {
        figure: run_figure(
            figure,
            jobs=jobs,
            params=params_by_figure.get(figure),
            artifact_cache=artifact_cache,
            capture_perf=capture_perf,
            force_parallel=force_parallel,
        )
        for figure in figures
    }
