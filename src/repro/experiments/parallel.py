"""Parallel experiment engine: process-pool scenario fan-out.

Every paper figure is a sweep of independent (app, mode, RTT,
probability, seed) cells that the serial runners in
:mod:`repro.experiments.runner` execute one after another.  This
module decomposes each sweep into its cells (*plan*), executes them
over a :class:`concurrent.futures.ProcessPoolExecutor` (*execute*),
and reassembles the rows in canonical order (*merge*), so the parallel
output is byte-identical to the serial runner's — which therefore
stays around as the differential oracle, exactly like the naive
signature scan does for the indexed dispatch path.

Determinism
-----------
Cells carry every seed explicitly, share no mutable state, and are
dispatched with ``Executor.map`` (order-preserving); merging is pure.
Workers warm their per-app artifacts from the on-disk analysis cache
(:mod:`repro.experiments.cache`) when one is configured — the
``_worker_init`` initializer exports it via ``REPRO_ANALYSIS_CACHE``
so every ``prepare_app`` call inside the pool hits disk instead of
re-running analysis + verification fuzzing.

Perf accounting
---------------
Each cell can return a :data:`PERF` snapshot taken inside the worker;
the engine folds worker counters, stage timings, and histograms into
the parent's :data:`PERF` (when enabled) under the same names, plus
``experiments.cells`` / ``experiments.parallel_cells`` on the engine
itself.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps.registry import all_apps
from repro.experiments import runner
from repro.experiments.cache import ENV_ENABLE, AnalysisArtifactCache
from repro.metrics.perf import PERF

#: figures the engine can fan out, with their cell functions
_CELL_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "table3": runner.table3_row,
    "fig13": runner.fig13_row,
    "fig14": runner.fig14_row,
    "fig15": runner.fig15_cell,
    "fig16": runner.fig16_cell,
    "fig17": runner.fig17_cell,
    "fig17_baseline": runner.fig17_baseline,
    "user_study": runner.user_study_run,
}

#: serial oracles, for callers that want the figure by name
SERIAL_RUNNERS: Dict[str, Callable[..., Any]] = {
    "table3": runner.table3_rows,
    "fig13": runner.fig13_main_interaction,
    "fig14": runner.fig14_app_launch,
    "fig15": runner.fig15_percentile_sweep,
    "fig16": runner.fig16_cdf_and_usage,
    "fig17": runner.fig17_probability_tradeoff,
}

PARALLEL_FIGURES: Tuple[str, ...] = (
    "table3",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
)

#: a work unit: (cell-function name, kwargs, capture-perf flag)
WorkUnit = Tuple[str, Dict[str, Any], bool]


# ======================================================================
# plan — decompose a sweep into picklable, independent work units
# ======================================================================
def plan_cells(figure: str, params: Optional[Dict[str, Any]] = None) -> List[WorkUnit]:
    """The figure's cells, in the serial runner's canonical order."""
    params = dict(params or {})
    params.pop("jobs", None)
    capture = bool(params.pop("capture_perf", False))
    apps = params.pop("apps", None)
    app_names = list(apps) if apps is not None else list(all_apps())

    if figure == "table3":
        return [
            ("table3", dict(params, name=name), capture) for name in app_names
        ]
    if figure in ("fig13", "fig14"):
        return [
            (figure, dict(params, name=name), capture) for name in app_names
        ]
    if figure in ("fig15", "fig16"):
        rtts = params.pop("rtts", (0.050, 0.100, 0.150))
        return [
            (figure, dict(params, name=name, rtt=rtt), capture)
            for name in app_names
            for rtt in rtts
        ]
    if figure == "fig17":
        probabilities = params.pop(
            "probabilities", (0.0, 0.25, 0.5, 0.75, 0.9, 1.0)
        )
        cells: List[WorkUnit] = [("fig17_baseline", dict(params), capture)]
        cells.extend(
            ("fig17", dict(params, probability=probability), capture)
            for probability in probabilities
        )
        return cells
    raise ValueError(
        "unknown figure {!r}; choose from {}".format(
            figure, ", ".join(PARALLEL_FIGURES)
        )
    )


def merge_results(figure: str, results: Sequence[Any]) -> Any:
    """Reassemble cell results into the serial runner's row list."""
    if figure == "fig17":
        baseline_bytes, cells = results[0], list(results[1:])
        return runner.fig17_finalize(cells, baseline_bytes)
    return list(results)


# ======================================================================
# execute — the worker side
# ======================================================================
def _worker_init(cache_env: Optional[str]) -> None:
    """Pool initializer: point workers at the engine's artifact cache."""
    if cache_env:
        os.environ[ENV_ENABLE] = cache_env
    else:
        os.environ.pop(ENV_ENABLE, None)


def execute_cell(unit: WorkUnit) -> Tuple[Any, Optional[Dict[str, Any]]]:
    """Run one work unit (in a pool worker or inline).

    The perf snapshot is the full :meth:`PerfCounters.snapshot` shape
    (counters + stage ``timings_s`` + histograms), so the parent's
    fold-back keeps worker stage timings instead of dropping them.
    """
    kind, kwargs, capture = unit
    function = _CELL_FUNCTIONS[kind]
    if not capture:
        return function(**kwargs), None
    with PERF.capture() as perf:
        result = function(**kwargs)
        snapshot = perf.snapshot()
    return result, snapshot


# ======================================================================
# run — the engine
# ======================================================================
def run_figure(
    figure: str,
    jobs: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    artifact_cache: Optional[AnalysisArtifactCache] = None,
    capture_perf: bool = False,
) -> Any:
    """Run one figure's sweep, fanned out over ``jobs`` processes.

    ``jobs=None`` or ``jobs <= 1`` executes the cells in-process (still
    through the cell/merge decomposition).  ``artifact_cache`` (or an
    already-exported ``REPRO_ANALYSIS_CACHE``) lets workers load
    per-app analysis artifacts from disk instead of recomputing them.
    Output is byte-identical to ``SERIAL_RUNNERS[figure](**params)``.
    """
    params = dict(params or {})
    if capture_perf:
        params["capture_perf"] = True
    cells = plan_cells(figure, params)
    if PERF.enabled:
        PERF.incr("experiments.cells", len(cells))

    cache_env = None
    if artifact_cache is not None:
        cache_env = artifact_cache.root
    elif os.environ.get(ENV_ENABLE):
        cache_env = os.environ[ENV_ENABLE]

    if jobs is None or jobs <= 1 or len(cells) <= 1:
        outcomes = [execute_cell(unit) for unit in cells]
    else:
        if PERF.enabled:
            PERF.incr("experiments.parallel_cells", len(cells))
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(cells)),
            initializer=_worker_init,
            initargs=(cache_env,),
        ) as pool:
            outcomes = list(pool.map(execute_cell, cells))

    results = [result for result, _ in outcomes]
    if PERF.enabled:
        for _, snapshot in outcomes:
            if snapshot:
                PERF.merge(snapshot)
    return merge_results(figure, results)


def run_figures(
    figures: Sequence[str],
    jobs: Optional[int] = None,
    params_by_figure: Optional[Dict[str, Dict[str, Any]]] = None,
    artifact_cache: Optional[AnalysisArtifactCache] = None,
    capture_perf: bool = False,
) -> Dict[str, Any]:
    """Run several figures; returns ``{figure: rows}`` in input order."""
    params_by_figure = params_by_figure or {}
    return {
        figure: run_figure(
            figure,
            jobs=jobs,
            params=params_by_figure.get(figure),
            artifact_cache=artifact_cache,
            capture_perf=capture_perf,
        )
        for figure in figures
    }
