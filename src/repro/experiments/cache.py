"""On-disk cache for per-app analysis/verification artifacts.

:func:`repro.experiments.scenario.prepare_app` runs the paper's phases
1–2 — static analysis plus the verification fuzzing pass — which
dominate experiment start-up and were previously memoized only
in-memory, once per process.  This module persists the three artifacts
a :class:`PreparedApp` is built from (the :class:`AnalysisResult`, the
generated :class:`ProxyConfig`, and the app-level seed
:class:`ValueStore`), so worker processes of the parallel experiment
engine and repeat CLI invocations skip re-analysis and re-fuzzing
entirely.

Keying and invalidation
-----------------------
A cache entry's key hashes, in order:

* :data:`FORMAT_VERSION` — bumped whenever this file's layout or the
  meaning of the artifacts changes;
* the app name;
* every :class:`AnalysisOptions` field (via ``options.to_dict()``, so
  new switches invalidate automatically);
* the verification parameters (``fuzz_duration``, ``estimate_expiry``);
* the app binary's content fingerprint (``ApkFile.fingerprint()``), so
  editing an app model invalidates its entries.

Entries are one JSON file each, named ``<app>-<key>.json``, written
atomically (temp file + ``os.replace``) so concurrent pool workers can
race on the same entry safely.  ``invalidate(name)`` drops one app's
entries, ``clear()`` drops everything — the explicit escape hatches
behind ``python -m repro cache --clear`` and the CLI ``--no-cache``
flag.

The cache is *opt-in* for library callers: the default directory comes
from ``REPRO_CACHE_DIR`` (or ``~/.cache/repro-appx``), but nothing is
read or written unless a caller passes ``disk_cache=True`` /
constructs a cache, or the ``REPRO_ANALYSIS_CACHE`` environment
variable enables it (the parallel engine sets this up for its
workers).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional, Tuple

from repro.analysis.pipeline import AnalysisOptions
from repro.analysis.serialize import dumps as dump_analysis, loads as load_analysis
from repro.apk.program import ApkFile
from repro.metrics.perf import PERF
from repro.proxy.config import ProxyConfig
from repro.proxy.instances import ValueStore

#: bump to invalidate every existing cache entry
FORMAT_VERSION = 1

#: environment switch: "1"/"on" enables the default cache dir, a path
#: enables that directory, "0"/"off"/unset leaves the cache disabled
ENV_ENABLE = "REPRO_ANALYSIS_CACHE"

#: environment override for the cache directory
ENV_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    override = os.environ.get(ENV_DIR)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-appx")


def cache_from_environment() -> Optional["AnalysisArtifactCache"]:
    """The cache the environment asks for, or ``None`` when disabled."""
    value = os.environ.get(ENV_ENABLE, "")
    if not value or value.lower() in ("0", "off", "false", "no"):
        return None
    if value.lower() in ("1", "on", "true", "yes"):
        return AnalysisArtifactCache(default_cache_dir())
    return AnalysisArtifactCache(value)


class AnalysisArtifactCache:
    """Versioned disk cache of (analysis, config, seed-store) bundles."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- keying ---------------------------------------------------------
    def key_for(
        self,
        name: str,
        apk: ApkFile,
        options: AnalysisOptions,
        fuzz_duration: float,
        estimate_expiry: bool,
    ) -> str:
        material = json.dumps(
            {
                "format": FORMAT_VERSION,
                "app": name,
                "options": options.to_dict(),
                "fuzz_duration": fuzz_duration,
                "estimate_expiry": estimate_expiry,
                "code": apk.fingerprint(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]

    def _path_for(self, name: str, key: str) -> str:
        return os.path.join(self.root, "{}-{}.json".format(name, key))

    # -- read -----------------------------------------------------------
    def load(
        self, name: str, key: str
    ) -> Optional[Tuple["object", ProxyConfig, Optional[ValueStore]]]:
        """Return ``(analysis, config, seed_store)`` or ``None`` on miss."""
        path = self._path_for(name, key)
        try:
            with open(path, "r") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            if PERF.enabled:
                PERF.incr("analysis_cache.misses")
            return None
        if payload.get("format") != FORMAT_VERSION or payload.get("key") != key:
            self.misses += 1
            if PERF.enabled:
                PERF.incr("analysis_cache.misses")
            return None
        analysis = load_analysis(payload["analysis"])
        config = ProxyConfig.from_json(payload["config"])
        seed_store: Optional[ValueStore] = None
        if payload.get("seed_tags") is not None:
            seed_store = ValueStore()
            seed_store._global_tags = dict(payload["seed_tags"])
            seed_store._global_fields = {
                (site, field_path): value
                for site, field_path, value in payload["seed_fields"]
            }
        self.hits += 1
        if PERF.enabled:
            PERF.incr("analysis_cache.hits")
        return analysis, config, seed_store

    # -- write ----------------------------------------------------------
    def store(
        self,
        name: str,
        key: str,
        analysis,
        config: ProxyConfig,
        seed_store: Optional[ValueStore],
    ) -> str:
        payload = {
            "format": FORMAT_VERSION,
            "app": name,
            "key": key,
            "analysis": dump_analysis(analysis),
            "config": config.to_json(),
            "seed_tags": None,
            "seed_fields": None,
        }
        if seed_store is not None:
            snapshot = seed_store.global_snapshot()
            payload["seed_tags"] = dict(snapshot._global_tags)
            payload["seed_fields"] = sorted(
                [site, field_path, value]
                for (site, field_path), value in snapshot._global_fields.items()
            )
        os.makedirs(self.root, exist_ok=True)
        path = self._path_for(name, key)
        fd, temp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.writes += 1
        if PERF.enabled:
            PERF.incr("analysis_cache.writes")
        return path

    # -- maintenance ----------------------------------------------------
    def entries(self) -> Dict[str, str]:
        """Map of cache file name → app name, for inspection."""
        found: Dict[str, str] = {}
        try:
            names = os.listdir(self.root)
        except OSError:
            return found
        for file_name in sorted(names):
            if file_name.endswith(".json"):
                found[file_name] = file_name.rsplit("-", 1)[0]
        return found

    def invalidate(self, name: str) -> int:
        """Drop every entry for one app; returns the number removed."""
        removed = 0
        for file_name, app in self.entries().items():
            if app == name:
                try:
                    os.unlink(os.path.join(self.root, file_name))
                    removed += 1
                except OSError:
                    pass
        if PERF.enabled and removed:
            PERF.incr("analysis_cache.invalidated", removed)
        return removed

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        removed = 0
        for file_name in self.entries():
            try:
                os.unlink(os.path.join(self.root, file_name))
                removed += 1
            except OSError:
                pass
        if PERF.enabled and removed:
            PERF.incr("analysis_cache.invalidated", removed)
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "entries": len(self.entries()),
        }

    def __repr__(self) -> str:
        return "AnalysisArtifactCache({!r}, {} entries)".format(
            self.root, len(self.entries())
        )
