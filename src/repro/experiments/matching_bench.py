"""Signature-dispatch microbenchmark (``python -m repro bench``).

Synthesizes a request workload from the five bundled apps' signature
sets — concrete URIs rendered from the URI templates, repeated
requests to exercise the dispatch memo, and deliberate misses — then
matches it twice: once through the indexed
:class:`~repro.proxy.instances.SignatureMatcher` hot path and once
through the retained naive linear scan.  Work is compared via
:mod:`repro.metrics.perf` counters (regex attempts, candidates
examined), not wall clock alone, and every request's outcome is
cross-checked between the two paths, so the benchmark doubles as a
large differential test.  The result dict is what ``python -m repro
bench`` writes to ``BENCH_matching.json``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.analysis import analyze_apk
from repro.analysis.model import AltAtom, ConstAtom
from repro.apps import all_apps
from repro.httpmsg.message import Request
from repro.httpmsg.uri import Uri
from repro.metrics.perf import PERF
from repro.proxy.instances import (
    RuntimeSignature,
    SignatureMatcher,
    build_runtime_signatures,
)


def _render_uri(
    signature: RuntimeSignature, rng: random.Random, host: str
) -> Optional[str]:
    """One concrete URI the signature's template accepts, or None."""
    parts: List[str] = []
    atoms = signature.signature.request.uri.atoms
    for position, atom in enumerate(atoms):
        if isinstance(atom, ConstAtom):
            parts.append(str(atom.value))
        elif isinstance(atom, AltAtom):
            option = rng.choice(atom.options)
            if not option.is_const():
                return None
            parts.append(str(option.const_value()))
        elif position == 0:
            # leading wildcard: in every bundled app this is the
            # env:config host tag, so substitute a plausible origin
            parts.append(host)
        else:
            parts.append("{:x}".format(rng.randrange(16 ** 8)))
    return "".join(parts)


def synthesize_workload(
    signature_sets: Dict[str, List[RuntimeSignature]],
    total_requests: int,
    seed: int = 0,
    repeat_fraction: float = 0.3,
    miss_fraction: float = 0.2,
) -> List[Request]:
    """A mixed match/repeat/miss workload over all apps' signatures.

    ``repeat_fraction`` of the requests re-send an earlier URI
    verbatim (the dispatch-memo case); ``miss_fraction`` are
    deliberate non-matches (unknown paths on known hosts, unknown
    hosts, wrong methods).
    """
    rng = random.Random(seed)
    renderable: List[Tuple[RuntimeSignature, str]] = []
    base: List[Request] = []
    for app, signatures in sorted(signature_sets.items()):
        host = "https://api.{}.example.com".format(app)
        for signature in signatures:
            uri_string = _render_uri(signature, rng, host)
            if uri_string is None:
                continue
            try:
                uri = Uri.parse(uri_string)
            except ValueError:
                continue
            renderable.append((signature, host))
            base.append(Request(signature.method, uri))
    if not base:
        raise ValueError("no synthesizable signatures")
    requests: List[Request] = []
    while len(requests) < total_requests:
        roll = rng.random()
        if requests and roll < repeat_fraction:
            template = rng.choice(requests)
            requests.append(Request(template.method, template.uri.copy()))
        elif roll < repeat_fraction + miss_fraction:
            kind = rng.randrange(3)
            sample = rng.choice(base)
            if kind == 0:  # unknown path on a known host
                uri = sample.uri.copy()
                uri.path = "/nope/{:x}".format(rng.randrange(16 ** 6))
                requests.append(Request(sample.method, uri))
            elif kind == 1:  # unknown host entirely
                requests.append(
                    Request(
                        sample.method,
                        Uri.parse(
                            "https://unknown-{:x}.example.org/misc/{:x}".format(
                                rng.randrange(16 ** 4), rng.randrange(16 ** 6)
                            )
                        ),
                    )
                )
            else:  # wrong method for a known URI
                method = "PUT" if sample.method != "PUT" else "DELETE"
                requests.append(Request(method, sample.uri.copy()))
        else:
            # fresh render: wildcard/dependency atoms get new values,
            # so distinct URIs keep arriving and the memo cannot absorb
            # the whole workload
            signature, host = rng.choice(renderable)
            uri_string = _render_uri(signature, rng, host)
            try:
                requests.append(Request(signature.method, Uri.parse(uri_string)))
            except ValueError:
                requests.append(Request(signature.method, rng.choice(base).uri.copy()))
    return requests


def _run_pass(
    matcher: SignatureMatcher, requests: List[Request], indexed: bool
) -> Tuple[List[Optional[str]], Dict[str, int], float]:

    outcomes: List[Optional[str]] = []
    with PERF.capture():
        with PERF.stage("pass"):
            if indexed:
                for request in requests:
                    found = matcher.match(request)
                    outcomes.append(found.site if found else None)
            else:
                for request in requests:
                    found = matcher.naive_match(request)
                    outcomes.append(found.site if found else None)
        snapshot = PERF.snapshot()
    return outcomes, snapshot["counters"], snapshot["timings_s"]["pass"]


def run_matching_bench(
    total_requests: int = 10_000, seed: int = 0
) -> Dict[str, object]:
    """Run the dispatch benchmark; returns the JSON-ready trajectory."""
    signature_sets: Dict[str, List[RuntimeSignature]] = {}
    for name, spec in all_apps().items():
        signature_sets[name] = build_runtime_signatures(
            analyze_apk(spec.build_apk())
        )
    signature_count = sum(len(s) for s in signature_sets.values())
    combined = [s for signatures in signature_sets.values() for s in signatures]
    requests = synthesize_workload(signature_sets, total_requests, seed=seed)

    matcher = SignatureMatcher(combined)
    naive_outcomes, naive_counters, naive_wall = _run_pass(
        matcher, requests, indexed=False
    )
    indexed_outcomes, indexed_counters, indexed_wall = _run_pass(
        matcher, requests, indexed=True
    )
    mismatches = sum(
        1 for a, b in zip(indexed_outcomes, naive_outcomes) if a != b
    )
    matched = sum(1 for site in indexed_outcomes if site is not None)
    n = float(len(requests)) or 1.0
    naive_attempts = naive_counters.get("matcher.naive_regex_attempts", 0)
    indexed_attempts = indexed_counters.get("matcher.regex_attempts", 0)
    return {
        "workload": {
            "requests": len(requests),
            "matched": matched,
            "seed": seed,
            "apps": sorted(signature_sets),
            "signatures": signature_count,
        },
        "naive": {
            "wall_s": naive_wall,
            "regex_attempts": naive_attempts,
            "regex_attempts_per_request": naive_attempts / n,
        },
        "indexed": {
            "wall_s": indexed_wall,
            "regex_attempts": indexed_attempts,
            "regex_attempts_per_request": indexed_attempts / n,
            "candidates_per_request": indexed_counters.get("matcher.candidates", 0) / n,
            "candidate_checks_per_request": indexed_counters.get(
                "matcher.candidate_checks", 0
            )
            / n,
            "memo_hits": indexed_counters.get("matcher.memo_hits", 0),
            "anchor_rejects": indexed_counters.get("matcher.anchor_rejects", 0),
        },
        "differential": {"mismatches": mismatches},
        "derived": {
            "regex_attempt_ratio": (
                naive_attempts / indexed_attempts if indexed_attempts else float("inf")
            ),
            "wall_speedup": naive_wall / indexed_wall if indexed_wall else float("inf"),
        },
    }
