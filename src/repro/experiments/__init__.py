"""Evaluation harness: one runner per table/figure of the paper (§6)."""

from repro.experiments.scenario import PreparedApp, Scenario, prepare_app, scoped_config
from repro.experiments import runner

__all__ = ["PreparedApp", "Scenario", "prepare_app", "scoped_config", "runner"]
