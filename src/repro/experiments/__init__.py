"""Evaluation harness: one runner per table/figure of the paper (§6)."""

from repro.experiments.scenario import PreparedApp, Scenario, prepare_app, scoped_config
from repro.experiments import runner
from repro.experiments.scale import run_scale, run_scale_sweep

__all__ = [
    "PreparedApp",
    "Scenario",
    "prepare_app",
    "scoped_config",
    "runner",
    "run_scale",
    "run_scale_sweep",
]
