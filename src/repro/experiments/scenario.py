"""Scenario assembly: app + origins + (optionally) the APPx proxy.

A :class:`Scenario` owns one simulator with the app's origin servers
and either the direct topology ("Orig" in the figures) or the proxied
topology ("APPx").  Each user gets their own device runtime and access
link (their "4G connection": 55 ms RTT / 25 Mbps by default), all
sharing the same proxy — mirroring the paper's §6 setup.

:func:`prepare_app` performs the paper's phases 1–2 once per app —
static analysis, then the verification phase which produces the
initial configuration and the app-level learned values — and caches
the result for every experiment: in-memory per process, and optionally
on disk via :mod:`repro.experiments.cache` so pool workers and repeat
CLI invocations skip re-analysis and re-fuzzing entirely.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.analysis.model import AnalysisResult
from repro.analysis.pipeline import AnalysisOptions, analyze_apk
from repro.apk.program import ApkFile
from repro.apps.base import AppSpec
from repro.apps.registry import get_app
from repro.device.profile import DeviceProfile
from repro.device.runtime import AppRuntime
from repro.netsim.link import Link
from repro.netsim.sim import Simulator
from repro.netsim.transport import DirectTransport
from repro.proxy.config import ProxyConfig, default_config
from repro.proxy.learning import DynamicLearner
from repro.proxy.proxy import AccelerationProxy, ProxiedTransport
from repro.proxy.verification import run_verification
from repro.server.content import Catalog

DEFAULT_ACCESS_RTT = 0.055  # the paper's 4G average
DEFAULT_BANDWIDTH = 25e6


def scoped_config(
    analysis: AnalysisResult,
    enabled_classes: Optional[List[str]] = None,
    base: Optional[ProxyConfig] = None,
) -> ProxyConfig:
    """Configuration limiting prefetch to the given activity classes.

    The paper "selects a representative user interaction ... as the
    prefetching target and configures the proxy as such" (§6); this is
    that configuration step.  ``None`` enables every (non-side-effect)
    signature.
    """
    config = base if base is not None else default_config(analysis)
    if enabled_classes is None:
        return config
    allowed = set(enabled_classes)
    for signature in analysis.signatures:
        site_class = signature.site.split(".", 1)[0]
        if site_class not in allowed:
            policy = config.policy(signature.site)
            if policy.prefetch:
                config.disable(signature.site, "not a configured prefetch target")
    return config


class PreparedApp:
    """Phases 1–2 output, reused by every experiment on an app."""

    def __init__(
        self,
        spec: AppSpec,
        apk: ApkFile,
        analysis: AnalysisResult,
        config: ProxyConfig,
        seed_store,
    ) -> None:
        self.spec = spec
        self.apk = apk
        self.analysis = analysis
        self.config = config
        self.seed_store = seed_store


_PREPARED: Dict[str, PreparedApp] = {}


def prepare_app(
    name: str,
    fuzz_duration: float = 90.0,
    estimate_expiry: bool = True,
    use_cache: bool = True,
    disk_cache: Union[bool, None, "AnalysisArtifactCache"] = None,
) -> PreparedApp:
    """Analyze + verify one app (cached across experiments).

    ``disk_cache`` selects the on-disk artifact layer: ``None`` honors
    the ``REPRO_ANALYSIS_CACHE`` environment switch (how pool workers
    inherit the engine's cache), ``True``/``False`` force it on or off
    at the default directory, and an :class:`AnalysisArtifactCache`
    instance is used as-is.  ``use_cache=False`` bypasses *both* layers
    — the ``--no-cache`` escape hatch.
    """
    if use_cache and name in _PREPARED:
        return _PREPARED[name]
    from repro.experiments.cache import (
        AnalysisArtifactCache,
        cache_from_environment,
    )

    spec = get_app(name)
    apk = spec.build_apk()
    options = AnalysisOptions(run_slicing=False)

    artifact_cache: Optional[AnalysisArtifactCache] = None
    if use_cache:
        if isinstance(disk_cache, AnalysisArtifactCache):
            artifact_cache = disk_cache
        elif disk_cache is True:
            artifact_cache = AnalysisArtifactCache()
        elif disk_cache is None:
            artifact_cache = cache_from_environment()

    key = None
    if artifact_cache is not None:
        key = artifact_cache.key_for(
            name, apk, options, fuzz_duration, estimate_expiry
        )
        cached = artifact_cache.load(name, key)
        if cached is not None:
            analysis, config, seed_store = cached
            prepared = PreparedApp(spec, apk, analysis, config, seed_store)
            _PREPARED[name] = prepared
            return prepared

    analysis = analyze_apk(apk, options)
    config, report = run_verification(
        apk,
        analysis,
        build_origin_map=lambda sim: spec.build_origin_map(sim, Catalog())[0],
        profile=spec.default_profile("verify-user"),
        fuzz_duration=fuzz_duration,
        estimate_expiry=estimate_expiry,
    )
    prepared = PreparedApp(spec, apk, analysis, config, report.seed_store)
    if artifact_cache is not None and key is not None:
        artifact_cache.store(name, key, analysis, config, report.seed_store)
    if use_cache:
        _PREPARED[name] = prepared
    return prepared


class Scenario:
    """One simulated deployment of one app."""

    def __init__(
        self,
        prepared: PreparedApp,
        proxied: bool = True,
        access_rtt: float = DEFAULT_ACCESS_RTT,
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        origin_rtt_override: Optional[float] = None,
        enabled_classes: Optional[List[str]] = None,
        global_probability: float = 1.0,
        catalog_seed: int = 7,
        proxy_seed: int = 0,
        max_chain_depth: Optional[int] = None,
    ) -> None:
        self.prepared = prepared
        self.spec = prepared.spec
        self.proxied = proxied
        self.access_rtt = access_rtt
        self.bandwidth_bps = bandwidth_bps
        self.sim = Simulator()
        self.catalog = Catalog(catalog_seed)
        self.origins, self.servers = self.spec.build_origin_map(
            self.sim,
            self.catalog,
            bandwidth_bps=bandwidth_bps,
            rtt_override=origin_rtt_override,
        )
        self.runtimes: Dict[str, AppRuntime] = {}
        self.proxy: Optional[AccelerationProxy] = None
        if proxied:
            config = ProxyConfig.from_json(prepared.config.to_json())  # fresh copy
            config = scoped_config(prepared.analysis, enabled_classes, base=config)
            config.global_probability = global_probability
            if max_chain_depth is not None:
                config.max_chain_depth = max_chain_depth
            seed_store = (
                prepared.seed_store.global_snapshot()
                if prepared.seed_store is not None
                else None
            )
            learner = DynamicLearner(prepared.analysis, store=seed_store)
            self.proxy = AccelerationProxy(
                self.sim,
                self.origins,
                prepared.analysis,
                config=config,
                learner=learner,
                seed=proxy_seed,
            )

    # ------------------------------------------------------------------
    def runtime(self, user: str, profile: Optional[DeviceProfile] = None) -> AppRuntime:
        """Device runtime for one user (own access link, own profile)."""
        if user in self.runtimes:
            return self.runtimes[user]
        access = Link(
            rtt=self.access_rtt,
            bandwidth_bps=self.bandwidth_bps,
            shared=True,
            name="access-{}".format(user),
        )
        if self.proxy is not None:
            transport = ProxiedTransport(self.sim, access, self.proxy)
        else:
            transport = DirectTransport(self.sim, access, self.origins)
        runtime = AppRuntime(
            self.prepared.apk,
            transport,
            self.sim,
            profile if profile is not None else self.spec.default_profile(user),
        )
        self.runtimes[user] = runtime
        return runtime

    # ------------------------------------------------------------------
    def demand_bytes(self) -> int:
        """Bytes a non-prefetching deployment would move to origins."""
        total = 0
        for runtime in self.runtimes.values():
            for transaction in runtime.transaction_log:
                total += (
                    transaction.request.wire_size()
                    + transaction.response.wire_size()
                )
        return total

    def server_bytes(self) -> int:
        """Origin-side bytes actually moved (incl. prefetch traffic)."""
        if self.proxy is not None:
            return self.proxy.total_server_bytes()
        return self.demand_bytes()
