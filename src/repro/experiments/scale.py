"""Population-scale load harness (``python -m repro scale``).

Every other experiment in this repo drives a handful of simulated
users through full app sessions — trace scale.  This module drives the
*serving core* (one shared :class:`~repro.proxy.multiapp.MultiAppProxy`
front of every app's origins) with an **open-loop Poisson workload**
over N synthetic users, the way a production deployment would see
traffic: arrivals do not wait for earlier responses, each user owns a
cache shard and replays a recorded app session request-by-request, and
a background sweeper purges expired entries the way a long-lived proxy
must.  Reported numbers separate *virtual* performance (client latency
percentiles, hit rate) from *host* cost (wall seconds per request,
simulator events per second, peak RSS) — the latter is what must stay
flat as N grows, and ``benchmarks/test_perf_scale.py`` asserts exactly
that: per-request wall cost at 10k users within ~2× of 100 users.

The session template is recorded once per app by running the real
:class:`~repro.device.runtime.AppRuntime` against a private simulator
(launch + the paper's main interaction), so the replayed requests
exercise the genuine dependency chains: predecessors spawn prefetches,
successors hit the per-user cache, and the priority queue sees real
contention.

Session-consistent replay
-------------------------
Origins personalize: a feed returns *different item ids per user*, and
session cookies are per ``(origin, user)``.  Replaying the template
user's recorded bytes verbatim under another user therefore can never
hit the exact-match cache — the proxy prefetches the ids *this* user's
feed returned, while the replay asks for the ids the *template* user
saw (the measured 0–6% hit rates of earlier revisions).  Replay is
instead recipe-based: at template-recording time, every request field
fed by a dependency edge is annotated with *which predecessor response
value* it came from; at replay time the field is rewritten from the
replaying user's own latest predecessor response, and the Cookie
header is rewritten from a per-user jar.  The replayed session is then
exactly what a real client of that user would send — and prefetching
can finally be measured doing its job.

``--strategy {appx,history,none}`` selects what serves that workload:
the full APPx proxy, a PALOMA-style most-frequent-successor baseline
(:mod:`repro.proxy.history`), or no prefetching at all (the latency
baseline the paper's claim is measured against).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.analysis.model import AnalysisResult
from repro.analysis.pipeline import AnalysisOptions, analyze_apk
from repro.apps.registry import get_app
from repro.device.runtime import AppRuntime
from repro.httpmsg.cookies import CookieJar
from repro.httpmsg.message import Request, Response, Transaction
from repro.metrics.catalog import (
    CACHE_MISS_PREFIX,
    SPAN_WALL_SECONDS,
    STAGE_SECONDS,
)
from repro.metrics.live import DEFAULT_WINDOW_S, LiveTelemetry, LiveWindows
from repro.metrics.perf import PERF, rss_peak_bytes
from repro.metrics.slo import BackpressureController, SloEngine
from repro.metrics.stats import percentile
from repro.metrics.trace import TRACER
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import DirectTransport, OriginMap
from repro.proxy.cache import PrefetchCache
from repro.proxy.expiration import ExpirationEstimator
from repro.proxy.history import HistoryPrefetcher
from repro.proxy.learning import LEARN_MODES
from repro.proxy.multiapp import MultiAppProxy, MultiAppTransport
from repro.proxy.proxy import AccelerationProxy
from repro.server.content import Catalog

DEFAULT_APPS = ("wish", "doordash")
DEFAULT_RATE_PER_USER = 0.5  # requests / user / virtual second
PURGE_INTERVAL = 5.0  # virtual seconds between expiry sweeps
SAMPLE_INTERVAL = 1.0  # virtual seconds between cache-size samples
STRATEGIES = ("appx", "history", "none")


def record_session_transactions(
    app_name: str, catalog_seed: int = 7
) -> List[Transaction]:
    """One real app session as its full transaction log.

    Runs launch plus the app's scripted main interaction on a private
    simulator over the direct topology; the responses are needed (not
    just the requests) so replay recipes can locate which predecessor
    response value fed each dependent request field.
    """
    spec = get_app(app_name)
    apk = spec.build_apk()
    sim = Simulator()
    origins, _ = spec.build_origin_map(sim, Catalog(catalog_seed))
    transport = DirectTransport(sim, Link(rtt=0.055, shared=True), origins)
    runtime = AppRuntime(apk, transport, sim, spec.default_profile("template-user"))

    def flow() -> Generator:
        yield sim.spawn(runtime.launch())
        yield Delay(6.0)
        for event in spec.main_flow:
            yield sim.spawn(runtime.dispatch(*event))
        return None

    sim.run_process(flow())
    return list(runtime.transaction_log)


def record_session_template(app_name: str, catalog_seed: int = 7) -> List[Request]:
    """Replay-ready request sequence of one real app session."""
    return [
        t.request.copy() for t in record_session_transactions(app_name, catalog_seed)
    ]


class _ReplayStep:
    """One template position: the recorded request plus its rewrite recipe.

    ``subs`` holds ``(succ_path, pred_site, pred_path, value_index)``
    tuples: at replay, the field at ``succ_path`` is overwritten with
    the ``value_index``-th value that the replaying user's own latest
    ``pred_site`` response exposes at ``pred_path``.
    """

    __slots__ = ("request", "site", "subs")

    def __init__(self, request: Request, site: Optional[str]) -> None:
        self.request = request
        self.site = site
        self.subs: List[Tuple[object, str, object, int]] = []


def _build_replay_steps(
    transactions: Sequence[Transaction],
    analysis: AnalysisResult,
    signature_for,
) -> List[_ReplayStep]:
    """Label template positions and derive their rewrite recipes.

    For a position matched to signature ``s``, each dependency edge
    into ``s`` is checked against the recording: when the recorded
    request's field value appears in the template user's latest earlier
    ``pred_site`` response at ``pred_path``, the *index* of that value
    is what generalizes across users (feeds are personalized — the
    value itself does not), so the recipe stores the index.
    """
    steps: List[_ReplayStep] = []
    last_ok: Dict[str, int] = {}  # site -> latest earlier ok transaction
    for index, transaction in enumerate(transactions):
        signature = signature_for(transaction.request)
        site = signature.site if signature is not None else None
        step = _ReplayStep(transaction.request.copy(), site)
        if site is not None:
            for edge in analysis.predecessors_of(site):
                previous = last_ok.get(edge.pred_site)
                if previous is None:
                    continue
                try:
                    template_values = edge.pred_path.extract(
                        transactions[previous].response
                    )
                    own = edge.succ_path.extract(transaction.request)
                except (ValueError, KeyError):
                    continue
                if own and own[0] in template_values:
                    step.subs.append(
                        (
                            edge.succ_path,
                            edge.pred_site,
                            edge.pred_path,
                            template_values.index(own[0]),
                        )
                    )
        steps.append(step)
        if site is not None and transaction.response.ok:
            last_ok[site] = index
    return steps


class _UserSession:
    """Per-user replay state: cookie jar, latest ok response per site,
    and the session-template cursor."""

    __slots__ = ("jar", "responses", "position")

    def __init__(self) -> None:
        self.jar = CookieJar()
        self.responses: Dict[str, Response] = {}
        self.position: Optional[int] = None


def _history_site_for(learner):
    """Label history-prefetched entries with the matching signature site
    so per-signature hit accounting stays comparable across strategies."""

    def site_for(request: Request) -> str:
        signature = learner.signature_for(request)
        return signature.site if signature is not None else ""

    return site_for


class _ScaleDeployment:
    """One MultiAppProxy serving every requested app's origins."""

    def __init__(
        self,
        apps: Sequence[str],
        catalog_seed: int = 7,
        max_entries_per_user: Optional[int] = None,
        max_bytes: Optional[int] = None,
        indexed_cache: bool = True,
        lazy_drain: bool = True,
        max_entries_total: Optional[int] = None,
        adaptive_budget: bool = False,
        admission_threshold: Optional[float] = None,
        strategy: str = "appx",
        learn_mode: str = "deferred",
        learn_queue_capacity: Optional[int] = None,
        learn_drain_budget: Optional[int] = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                "strategy must be one of {}, got {!r}".format(STRATEGIES, strategy)
            )
        if learn_mode not in LEARN_MODES:
            raise ValueError(
                "learn_mode must be one of {}, got {!r}".format(
                    LEARN_MODES, learn_mode
                )
            )
        self.sim = Simulator()
        self.origins = OriginMap()
        self.multi = MultiAppProxy(self.sim, self.origins)
        self.strategy = strategy
        self.learn_mode = learn_mode
        self.templates: Dict[str, List[Request]] = {}
        self.steps: Dict[str, List[_ReplayStep]] = {}
        #: per app, the template positions whose site is a dependency
        #: predecessor (chain triggers) — warm starts anchor on these
        self.pred_positions: Dict[str, List[int]] = {}
        self.history: Dict[str, HistoryPrefetcher] = {}
        for name in apps:
            spec = get_app(name)
            app_origins, _ = spec.build_origin_map(self.sim, Catalog(catalog_seed))
            for origin, endpoint in app_origins.origins().items():
                self.origins.register(
                    origin,
                    endpoint,
                    app_origins.link_for(Request("GET", _origin_uri(origin))),
                )
            analysis = analyze_apk(spec.build_apk(), AnalysisOptions(run_slicing=False))
            cache = PrefetchCache(
                indexed=indexed_cache,
                max_entries_per_user=max_entries_per_user,
                max_bytes=max_bytes,
                max_entries_total=max_entries_total,
                adaptive=adaptive_budget,
            )
            proxy = AccelerationProxy(
                self.sim, app_origins, analysis, cache=cache, learn_mode=learn_mode
            )
            proxy.prefetcher.lazy_drain = lazy_drain
            if admission_threshold is not None:
                proxy.config.admission_threshold = admission_threshold
            # deferred-learn knobs: a forced-small queue capacity is the
            # overflow-burst scenario the SLO/backpressure tests drive
            if learn_queue_capacity is not None:
                proxy.learner.learn_queue_capacity = learn_queue_capacity
            if learn_drain_budget is not None:
                proxy.learner.learn_drain_budget = learn_drain_budget
            if strategy != "appx":
                # non-appx strategies serve the identical workload with
                # signature-driven prefetching off; cache lookups still
                # run, so history-strategy entries get served normally
                for site in list(proxy.config.policies):
                    proxy.config.disable(site, "strategy={}".format(strategy))
            if strategy == "history":
                self.history[name] = HistoryPrefetcher(
                    self.sim,
                    app_origins,
                    cache,
                    site_for=_history_site_for(proxy.learner),
                )
            self.multi.register_app(name, proxy)
            transactions = record_session_transactions(name, catalog_seed)
            self.templates[name] = [t.request.copy() for t in transactions]
            steps = _build_replay_steps(
                transactions, analysis, proxy.learner.signature_for
            )
            self.steps[name] = steps
            pred_sites = {edge.pred_site for edge in analysis.dependencies}
            self.pred_positions[name] = [
                i for i, step in enumerate(steps) if step.site in pred_sites
            ]


def _origin_uri(origin: str):
    from repro.httpmsg.uri import Uri

    return Uri.parse(origin + "/")


class ArrivalSchedule:
    """A pre-drawn open-loop arrival process, replayable in any process.

    ``events`` holds ``(dt, user_index, first_position)`` tuples: the
    virtual delay since the *previous event in this schedule*, the
    arriving user, and — on the user's first arrival only — the session
    position its replay starts from (``None`` afterwards).
    ``terminal_dt`` is the final inter-arrival draw, the one whose
    arrival instant crossed ``duration`` and terminated the process;
    replaying it keeps the arrivals generator alive to the same instant
    the live path's would be, so the simulated event count matches.

    The sharded fleet supervisor draws ONE global schedule with the run
    seed, then partitions it per shard: every worker replays exactly
    the arrival instants the single-process harness would have
    produced, so sharding changes where a user is served, never when.
    """

    __slots__ = ("events", "terminal_dt", "users", "duration", "rate_per_user", "seed")

    def __init__(
        self,
        events: List[Tuple[float, int, Optional[int]]],
        terminal_dt: float,
        users: int,
        duration: float,
        rate_per_user: float,
        seed: int,
    ) -> None:
        self.events = events
        self.terminal_dt = terminal_dt
        self.users = users
        self.duration = duration
        self.rate_per_user = rate_per_user
        self.seed = seed

    def __len__(self) -> int:
        return len(self.events)


def build_arrival_schedule(
    users: int,
    duration: float,
    rate_per_user: float,
    seed: int,
    step_counts: Dict[str, int],
    user_app: Sequence[str],
    warm_start: bool = False,
    pred_positions: Optional[Dict[str, List[int]]] = None,
) -> ArrivalSchedule:
    """Pre-draw the Poisson arrival schedule :func:`run_scale` would draw live.

    The PRNG call sequence here — ``expovariate`` per arrival,
    ``randrange(users)`` per admitted arrival, ``randrange(steps)`` on
    a user's first arrival — mirrors the live ``arrivals()`` generator
    draw for draw, and arrival instants accumulate with the same
    left-fold float additions the simulator clock performs.  A seeded
    replay of the full schedule is therefore byte-equivalent to the
    live path, which is what lets ``--workers 1`` serve as a
    differential oracle for the fleet.
    """
    import random

    rng = random.Random(seed)
    total_rate = users * rate_per_user
    now = 0.0
    seen: Dict[int, bool] = {}
    events: List[Tuple[float, int, Optional[int]]] = []
    while True:
        dt = rng.expovariate(total_rate)
        now = now + dt
        if now >= duration:
            return ArrivalSchedule(events, dt, users, duration, rate_per_user, seed)
        user_index = rng.randrange(users)
        position: Optional[int] = None
        if user_index not in seen:
            seen[user_index] = True
            app = user_app[user_index]
            position = rng.randrange(step_counts[app])
            if warm_start:
                anchors = (pred_positions or {}).get(app) or []
                if anchors:
                    eligible = [p for p in anchors if p <= position]
                    position = eligible[-1] if eligible else anchors[0]
        events.append((dt, user_index, position))


def stage_latency_from_registry(registry) -> Dict[str, Dict[str, float]]:
    """Per-stage latency table out of a registry's histograms.

    ``stage_seconds{stage=...}`` (fed by ``PERF.stage``) reports under
    the bare stage name; sampled trace spans
    (``span_wall_seconds{stage=...}``) under a ``span:`` prefix.
    Shared by the serial harness row and the fleet supervisor, which
    calls it on the registry folded back from every worker.
    """
    stage_latency: Dict[str, Dict[str, float]] = {}
    for metric, prefix in ((STAGE_SECONDS, ""), (SPAN_WALL_SECONDS, "span:")):
        for labels, histogram in registry.series(metric):
            if not histogram.count:
                continue
            stage_latency[prefix + labels.get("stage", "")] = {
                "count": histogram.count,
                "p50_us": 1e6 * histogram.percentile(50),
                "p95_us": 1e6 * histogram.percentile(95),
                "p99_us": 1e6 * histogram.percentile(99),
                "mean_us": 1e6 * histogram.mean,
                "total_s": histogram.sum,
            }
    return stage_latency


def miss_causes_from_counters(counters: Dict[str, int]) -> Dict[str, int]:
    """The ``cache.miss.<cause>`` counters, keyed by bare cause."""
    return {
        name[len(CACHE_MISS_PREFIX):]: count
        for name, count in counters.items()
        if name.startswith(CACHE_MISS_PREFIX)
    }


def run_scale(
    users: int,
    duration: float,
    apps: Sequence[str] = DEFAULT_APPS,
    rate_per_user: float = DEFAULT_RATE_PER_USER,
    seed: int = 0,
    max_entries_per_user: Optional[int] = None,
    max_bytes: Optional[int] = None,
    indexed_cache: bool = True,
    lazy_drain: bool = True,
    access_rtt: float = 0.055,
    trace_path: Optional[str] = None,
    trace_sample: Optional[float] = None,
    trace_seed: int = 0,
    trace_capacity: int = 65_536,
    strategy: str = "appx",
    max_entries_total: Optional[int] = None,
    adaptive_budget: bool = False,
    admission_threshold: Optional[float] = None,
    estimate_expiration: bool = False,
    warm_start: bool = False,
    arrival_schedule: Optional[ArrivalSchedule] = None,
    collect_latencies: bool = False,
    learn_mode: str = "deferred",
    learn_queue_capacity: Optional[int] = None,
    learn_drain_budget: Optional[int] = None,
    telemetry: bool = False,
    telemetry_interval: float = 0.5,
    slo_config: Optional[Dict[str, object]] = None,
    heartbeat_interval: Optional[float] = None,
    heartbeat_sink: Optional[Callable[[Dict[str, object]], None]] = None,
    shard: Optional[int] = None,
    backpressure: bool = True,
    _deployment: Optional[_ScaleDeployment] = None,
) -> Dict[str, object]:
    """Serve an open-loop Poisson workload; returns the metrics row.

    ``users`` synthetic users are split round-robin across ``apps``;
    each replays its app's recorded session cyclically, one request
    per arrival.  Arrivals form a Poisson process of total rate
    ``users * rate_per_user`` over ``duration`` virtual seconds —
    open-loop: an arrival never waits for a previous response, so a
    slow serving core cannot throttle its own measured load.  Wall
    time is measured around the event loop only (deployment and
    workload construction excluded).

    Request-lifecycle tracing is armed when ``trace_path`` or
    ``trace_sample`` is given: the global tracer samples
    ``trace_sample`` of requests (default 1.0) into a ring of
    ``trace_capacity`` records, feeds per-stage span histograms into
    the PERF registry, and — when ``trace_path`` is set — exports the
    buffered records as JSONL after the run.  Left off (the default),
    the serving core pays only the one-branch disabled check.

    ``arrival_schedule`` replays a pre-drawn
    :class:`ArrivalSchedule` (typically one fleet shard's partition)
    instead of drawing arrivals live; ``_deployment`` reuses an
    already-built :class:`_ScaleDeployment` (it must have been built
    with the same app/cache/strategy arguments); and
    ``collect_latencies`` attaches the raw per-request virtual
    latencies to the row under ``"latencies_s"`` so a fleet supervisor
    can compute exact aggregate percentiles across shards.

    The **live telemetry plane** (:mod:`repro.metrics.live`) is armed
    by ``telemetry=True``, by an SLO config (``slo_config``, the
    parsed ``benchmarks/slo.json``), or by ``heartbeat_interval``:
    a simulator process ticks every ``telemetry_interval`` virtual
    seconds, maintaining rolling windows, evaluating SLO burn rates
    (alerts land in the trace ring as ``kind=alert``), driving the
    overflow/hit-rate backpressure loop (``backpressure=False`` turns
    only the actuation off), and — when ``heartbeat_sink`` is set —
    shipping compact windowed snapshots every ``heartbeat_interval``
    virtual seconds (the fleet worker's mid-run liveness channel).
    The row gains ``live`` / ``slo`` / ``backpressure`` sections
    (``None`` when the plane is off, which is the default: the only
    hot-path cost of the disabled plane is one ``is None`` branch).
    """
    import random

    if users < 1:
        raise ValueError("users must be >= 1")
    tracing = trace_path is not None or trace_sample is not None
    apps = tuple(apps)
    deployment = _deployment
    if deployment is not None and deployment.strategy != strategy:
        raise ValueError(
            "reused deployment was built for strategy {!r}, not {!r}".format(
                deployment.strategy, strategy
            )
        )
    if deployment is not None and deployment.learn_mode != learn_mode:
        raise ValueError(
            "reused deployment was built for learn_mode {!r}, not {!r}".format(
                deployment.learn_mode, learn_mode
            )
        )
    if deployment is None:
        deployment = _ScaleDeployment(
            apps,
            max_entries_per_user=max_entries_per_user,
            max_bytes=max_bytes,
            indexed_cache=indexed_cache,
            lazy_drain=lazy_drain,
            max_entries_total=max_entries_total,
            adaptive_budget=adaptive_budget,
            admission_threshold=admission_threshold,
            strategy=strategy,
            learn_mode=learn_mode,
            learn_queue_capacity=learn_queue_capacity,
            learn_drain_budget=learn_drain_budget,
        )
    sim = deployment.sim
    multi = deployment.multi
    rng = random.Random(seed)

    estimators: List[ExpirationEstimator] = []
    if estimate_expiration and strategy == "appx":
        for _, proxy in multi._apps:
            estimator = ExpirationEstimator(sim, proxy.origins, proxy.config)
            proxy.prefetcher.expiration = estimator
            estimators.append(estimator)
            sim.spawn(
                estimator.run(proxy.prefetcher.sample_requests, duration=duration)
            )

    user_app = [apps[i % len(apps)] for i in range(users)]
    # each user starts at a random point of its session template so the
    # request mix is stationary: the share of chain-triggering
    # predecessor requests is the same whether a cell sees each user
    # once (large N, short duration) or many times (small N) — without
    # this, large-N cells would be 100% session-start requests and the
    # per-request cost comparison across population sizes would be
    # comparing different workloads.  ``warm_start`` backs the random
    # start up to the nearest chain-trigger position, so a new user's
    # first requests include the predecessor that makes its successors
    # prefetchable at all — the right mode for strategy comparisons
    # (hits need the user's own predecessor response), but OFF by
    # default because it breaks exactly that stationarity: every first
    # arrival becomes a fan-out-triggering predecessor, and short
    # large-N cells degenerate into pure prefetch storms.
    sessions: Dict[int, _UserSession] = {}
    transports: Dict[int, MultiAppTransport] = {}
    latencies: List[float] = []
    state = {"sent": 0, "completed": 0, "peak_entries": 0}

    # live telemetry plane: rolling windows + SLO burn + backpressure
    live: Optional[LiveTelemetry] = None
    engine: Optional[SloEngine] = None
    controller: Optional[BackpressureController] = None
    if telemetry or slo_config is not None or heartbeat_interval is not None:
        engine = SloEngine(slo_config) if slo_config is not None else None
        window_s = engine.window_s if engine is not None else DEFAULT_WINDOW_S
        windows = LiveWindows(window_s=window_s)
        if backpressure:
            controller = BackpressureController(
                [proxy.learner for _, proxy in multi._apps],
                [proxy.config for _, proxy in multi._apps],
                windows,
                overflow_horizon_s=(
                    engine.fast_window_s if engine is not None else None
                ),
            )
        live = LiveTelemetry(
            [proxy for _, proxy in multi._apps],
            windows=windows,
            slo=engine,
            backpressure=controller,
            interval_s=telemetry_interval,
            heartbeat_interval=heartbeat_interval,
            heartbeat_sink=heartbeat_sink,
            shard=shard,
            requests_fn=lambda: state["completed"],
        )

    def transport_for(user_index: int) -> MultiAppTransport:
        transport = transports.get(user_index)
        if transport is None:
            transport = MultiAppTransport(
                sim,
                Link(rtt=access_rtt, shared=True, name="access-u{}".format(user_index)),
                multi,
            )
            transports[user_index] = transport
        return transport

    def send_one(user_index: int, step: _ReplayStep) -> Generator:
        app = user_app[user_index]
        session = sessions[user_index]
        user = "u{}".format(user_index)
        request = step.request.copy()
        # session-consistent replay: dependency-fed fields come from
        # this user's own predecessor responses, and the Cookie header
        # from this user's own jar — never the template user's bytes
        for succ_path, pred_site, pred_path, value_index in step.subs:
            predecessor = session.responses.get(pred_site)
            if predecessor is None:
                continue
            try:
                values = pred_path.extract(predecessor)
                if value_index < len(values):
                    succ_path.assign(request, values[value_index])
            except (ValueError, KeyError):
                pass
        origin = request.uri.origin()
        # Rewrite the Cookie header only on steps where the recorded
        # template sent one: real apps attach cookies consistently per
        # endpoint, and the learner's prefetch requests mirror exactly
        # that shape (no cookie field in the signature means prefetched
        # entries are stored cookie-less — a demand replay that adds
        # one can never exact-match them).  When the jar has nothing
        # yet, the template value is left alone so the request still
        # matches its signature on the first cycle.
        if step.request.headers.get("Cookie") is not None:
            cookie = session.jar.cookie_header(origin)
            if cookie:
                request.headers.set("Cookie", cookie)
        history = deployment.history.get(app)
        if history is not None:
            history.observe(user, request, sim.now)
        started_at = sim.now
        response = yield sim.spawn(transport_for(user_index).send(request, user))
        elapsed = sim.now - started_at
        latencies.append(elapsed)
        state["completed"] += 1
        if live is not None:
            live.on_request(elapsed, sim.now)
        session.jar.store_from_response(origin, response)
        if step.site is not None and response.ok:
            session.responses[step.site] = response
        return None

    def arrive(user_index: int, first_position: Optional[int]) -> None:
        steps = deployment.steps[user_app[user_index]]
        session = sessions.get(user_index)
        if session is None:
            session = sessions[user_index] = _UserSession()
            session.position = first_position
        step = steps[session.position % len(steps)]
        session.position += 1
        state["sent"] += 1
        sim.spawn(send_one(user_index, step))

    def arrivals() -> Generator:
        total_rate = users * rate_per_user
        while True:
            yield Delay(rng.expovariate(total_rate))
            if sim.now >= duration:
                return None
            user_index = rng.randrange(users)
            position: Optional[int] = None
            if user_index not in sessions:
                app = user_app[user_index]
                position = rng.randrange(len(deployment.steps[app]))
                if warm_start:
                    anchors = deployment.pred_positions[app]
                    if anchors:
                        eligible = [p for p in anchors if p <= position]
                        position = eligible[-1] if eligible else anchors[0]
            arrive(user_index, position)

    def scheduled_arrivals() -> Generator:
        # replay one shard's partition of a pre-drawn global schedule;
        # the terminal delay keeps this generator alive to the instant
        # the live path's final (duration-crossing) draw would wake it
        for dt, user_index, first_position in arrival_schedule.events:
            yield Delay(dt)
            arrive(user_index, first_position)
        yield Delay(arrival_schedule.terminal_dt)
        return None

    def sweeper() -> Generator:
        while sim.now < duration:
            yield Delay(PURGE_INTERVAL)
            multi.purge_expired(sim.now)
            # drain any deferred-learn backlog a burst left behind
            # (the per-request pump keeps the queue ~empty normally)
            for _, proxy in multi._apps:
                proxy.pump_learning()
        return None

    def sampler() -> Generator:
        while sim.now < duration:
            yield Delay(SAMPLE_INTERVAL)
            entries = multi.cache_entries()
            if entries > state["peak_entries"]:
                state["peak_entries"] = entries
        return None

    def telemetry_loop() -> Generator:
        while sim.now < duration:
            yield Delay(live.interval_s)
            live.tick(sim.now)
        return None

    sim.spawn(
        arrivals() if arrival_schedule is None else scheduled_arrivals()
    )
    sim.spawn(sweeper())
    sim.spawn(sampler())
    if live is not None:
        sim.spawn(telemetry_loop())

    if tracing:
        TRACER.configure(
            sample_rate=1.0 if trace_sample is None else trace_sample,
            capacity=trace_capacity,
            seed=trace_seed,
            registry=PERF.registry,
            sim_clock=lambda: sim.now,
        )
        TRACER.enable()
    try:
        with PERF.capture():
            wall_started = time.perf_counter()
            sim.run()
            wall_s = time.perf_counter() - wall_started
            sim_events = PERF.get("sim.events")
    finally:
        if tracing:
            TRACER.disable()

    trace_stats: Optional[Dict[str, object]] = None
    if tracing:
        trace_stats = TRACER.stats()
        if trace_path is not None:
            trace_stats["path"] = trace_path
        # exported below, after the per-signature summary record is
        # appended to the ring (so offline audits see it in the file)

    # per-stage latency histograms out of the registry: PERF.stage
    # feeds stage_seconds{stage=...}; sampled trace spans feed
    # span_wall_seconds{stage=...} (reported under a "span:" prefix)
    stage_latency = stage_latency_from_registry(PERF.registry)
    miss_causes = miss_causes_from_counters(PERF.counters)

    if live is not None:
        # trailing counter deltas land in the final window bucket so
        # the end-of-run readings/verdict see the whole run
        live.finalize()

    final_entries = multi.cache_entries()
    if final_entries > state["peak_entries"]:
        state["peak_entries"] = final_entries
    served = sum(proxy.served_prefetched for _, proxy in multi._apps)
    forwarded = sum(proxy.forwarded for _, proxy in multi._apps)
    issued = sum(proxy.prefetcher.issued for _, proxy in multi._apps) + sum(
        h.issued for h in deployment.history.values()
    )
    caches = [proxy.cache for _, proxy in multi._apps]
    requests = state["completed"]
    answered = served + forwarded

    # per-signature prefetch efficacy: issued / hits / wasted, merged
    # across apps — the audit table behind admission decisions
    by_signature: Dict[str, Dict[str, int]] = {}

    def _signature_cell(site: str) -> Dict[str, int]:
        cell = by_signature.get(site)
        if cell is None:
            cell = by_signature[site] = {"issued": 0, "hits": 0, "wasted": 0}
        return cell

    for _, proxy in multi._apps:
        for site, count in proxy.prefetcher.issued_by_site.items():
            _signature_cell(site)["issued"] += count
        for site, count in proxy.cache.hits.items():
            _signature_cell(site)["hits"] += count
        for site, count in proxy.cache.wasted_by_site.items():
            _signature_cell(site)["wasted"] += count
    for history in deployment.history.values():
        _signature_cell("(history)")["issued"] += history.issued

    if tracing:
        TRACER.append_record(
            {
                "trace_id": "summary",
                "user": "-",
                "kind": "summary",
                "spans": [],
                "tags": {"prefetch_by_signature": by_signature},
            }
        )
        if trace_path is not None and trace_stats is not None:
            trace_stats["exported"] = TRACER.export_jsonl(trace_path)

    row: Dict[str, object] = {
        "users": users,
        "apps": list(apps),
        "duration_s": duration,
        "rate_per_user": rate_per_user,
        "seed": seed,
        "requests": requests,
        "requests_sent": state["sent"],
        "wall_s": wall_s,
        "per_request_wall_us": (1e6 * wall_s / requests) if requests else 0.0,
        "requests_per_wall_s": (requests / wall_s) if wall_s else 0.0,
        "sim_events": sim_events,
        "sim_events_per_wall_s": (sim_events / wall_s) if wall_s else 0.0,
        "latency_p50_ms": 1000 * percentile(latencies, 50) if latencies else 0.0,
        "latency_p95_ms": 1000 * percentile(latencies, 95) if latencies else 0.0,
        "latency_p99_ms": 1000 * percentile(latencies, 99) if latencies else 0.0,
        "hit_rate": (served / answered) if answered else 0.0,
        "served_prefetched": served,
        "forwarded": forwarded,
        "prefetch_issued": issued,
        "peak_cache_entries": state["peak_entries"],
        "final_cache_entries": final_entries,
        "cache_stored": sum(c.stored for c in caches),
        "cache_expired_evictions": sum(c.expired_evictions for c in caches),
        "cache_lru_evictions": sum(c.lru_evictions for c in caches),
        "cache_wheel_purged": sum(c.wheel_purged for c in caches),
        "peak_rss_bytes": rss_peak_bytes(),
        "indexed_cache": indexed_cache,
        "lazy_drain": lazy_drain,
        "max_entries_per_user": max_entries_per_user,
        "max_bytes": max_bytes,
        "max_entries_total": max_entries_total,
        "adaptive_budget": adaptive_budget,
        "admission_threshold": admission_threshold,
        "strategy": strategy,
        "learn_mode": learn_mode,
        "learn_queue_overflows": sum(
            proxy.learner.queue_overflows for _, proxy in multi._apps
        ),
        "learn_deferred_drained": sum(
            proxy.learner.deferred_drained for _, proxy in multi._apps
        ),
        "prefetch_wasted": sum(c.wasted for c in caches),
        "skipped_admission": sum(
            proxy.prefetcher.skipped_admission for _, proxy in multi._apps
        ),
        "prefetch_by_signature": by_signature,
        "expiration": (
            {
                "sites": sum(len(e.estimates) for e in estimators),
                "converged": sum(
                    1
                    for e in estimators
                    for est in e.estimates.values()
                    if est.converged
                ),
                "probes_issued": sum(e.probes_issued for e in estimators),
                "disabled": sum(len(e.disabled_sites) for e in estimators),
            }
            if estimators
            else None
        ),
        "history": (
            {
                name: prefetcher.stats()
                for name, prefetcher in deployment.history.items()
            }
            if deployment.history
            else None
        ),
        "stage_latency_us": stage_latency,
        "miss_causes": miss_causes,
        "trace": trace_stats,
        "live": live.summary(live.last_now) if live is not None else None,
        "slo": (
            engine.report(live.windows, live.last_now)
            if engine is not None
            else None
        ),
        "backpressure": controller.stats() if controller is not None else None,
    }
    if collect_latencies:
        row["latencies_s"] = latencies
    return row


def run_strategy_comparison(
    users: int,
    duration: float,
    apps: Sequence[str] = DEFAULT_APPS,
    rate_per_user: float = 1.0,
    seed: int = 0,
    strategies: Sequence[str] = ("none", "history", "appx"),
    **kwargs,
) -> Dict[str, object]:
    """Three-way strategy comparison on one identical workload.

    Each strategy serves the same seeded open-loop workload (same
    arrival times, same users, same session positions), so latency and
    hit-rate deltas are attributable to the prefetch strategy alone.
    ``derived`` reports each strategy's p50/p95 delta against the
    ``none`` baseline — the paper's headline measurement.
    """
    kwargs.setdefault("warm_start", True)
    rows: Dict[str, Dict[str, object]] = {}
    for strategy in strategies:
        rows[strategy] = run_scale(
            users,
            duration,
            apps=apps,
            rate_per_user=rate_per_user,
            seed=seed,
            strategy=strategy,
            **kwargs,
        )
    derived: Dict[str, Dict[str, float]] = {}
    baseline = rows.get("none")
    for strategy, row in rows.items():
        if baseline is None or strategy == "none":
            continue
        p50 = float(row["latency_p50_ms"])
        base_p50 = float(baseline["latency_p50_ms"])
        derived[strategy] = {
            "p50_delta_ms": p50 - base_p50,
            "p95_delta_ms": float(row["latency_p95_ms"])
            - float(baseline["latency_p95_ms"]),
            "p50_speedup": (base_p50 / p50) if p50 else 0.0,
            "hit_rate": float(row["hit_rate"]),
            "thrash_ratio": (
                float(row["cache_lru_evictions"]) / float(row["cache_stored"])
                if row["cache_stored"]
                else 0.0
            ),
        }
    return {
        "workload": {
            "users": users,
            "duration_s": duration,
            "apps": list(apps),
            "rate_per_user": rate_per_user,
            "seed": seed,
        },
        "rows": rows,
        "derived": derived,
    }


def format_strategy_table(comparison: Dict[str, object]) -> str:
    """Render a strategy comparison as an aligned text table.

    Shared by ``repro scale --compare-strategies``, the BENCH_scale
    benchmark, and the CI prefetch-efficacy gate (which appends it to
    ``bench_tables.txt``).
    """
    workload = comparison["workload"]
    lines = [
        "strategy comparison: users={users} duration={duration_s}s "
        "rate={rate_per_user}/s apps={apps} seed={seed}".format(
            users=workload["users"],
            duration_s=workload["duration_s"],
            rate_per_user=workload["rate_per_user"],
            apps=",".join(workload["apps"]),
            seed=workload["seed"],
        ),
        "{:<9} {:>9} {:>7} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9}".format(
            "strategy", "requests", "hit", "p50_ms", "p95_ms",
            "issued", "wasted", "adm_skip", "speedup",
        ),
    ]
    derived = comparison["derived"]
    for strategy, row in comparison["rows"].items():
        speedup = derived.get(strategy, {}).get("p50_speedup")
        lines.append(
            "{:<9} {:>9} {:>6.1f}% {:>9.1f} {:>9.1f} {:>8} {:>8} {:>9} "
            "{:>9}".format(
                strategy,
                row["requests"],
                100.0 * float(row["hit_rate"]),
                float(row["latency_p50_ms"]),
                float(row["latency_p95_ms"]),
                row["prefetch_issued"],
                row["prefetch_wasted"],
                row["skipped_admission"],
                "{:.2f}x".format(speedup) if speedup is not None else "-",
            )
        )
    return "\n".join(lines)


def run_scale_sweep(
    user_counts: Sequence[int],
    duration_for: Optional[Dict[int, float]] = None,
    default_duration: float = 10.0,
    **kwargs,
) -> Dict[str, object]:
    """One row per population size, plus the scaling verdict.

    ``duration_for`` lets callers shrink virtual duration as N grows
    (open-loop arrival volume is ``N * rate * duration``, so a fixed
    duration would make the 10k-user cell 100× the 100-user cell's
    request count without telling us anything new about per-request
    cost).  The verdict compares smallest-vs-largest per-request wall
    cost — the number that must stay flat when the serving core is
    population-independent.  When tracing to a file across several
    cells, each cell writes ``<stem>-<users><ext>`` so no cell
    overwrites another's export.
    """
    import os

    trace_path = kwargs.pop("trace_path", None)
    rows = []
    for count in user_counts:
        duration = (duration_for or {}).get(count, default_duration)
        cell_path = trace_path
        if trace_path is not None and len(user_counts) > 1:
            stem, ext = os.path.splitext(trace_path)
            cell_path = "{}-{}{}".format(stem, count, ext or ".jsonl")
        rows.append(run_scale(count, duration, trace_path=cell_path, **kwargs))
    smallest, largest = rows[0], rows[-1]
    ratio = (
        largest["per_request_wall_us"] / smallest["per_request_wall_us"]
        if smallest["per_request_wall_us"]
        else float("inf")
    )
    return {
        "rows": rows,
        "derived": {
            "smallest_users": smallest["users"],
            "largest_users": largest["users"],
            "per_request_cost_ratio": ratio,
        },
    }
