"""Population-scale load harness (``python -m repro scale``).

Every other experiment in this repo drives a handful of simulated
users through full app sessions — trace scale.  This module drives the
*serving core* (one shared :class:`~repro.proxy.multiapp.MultiAppProxy`
front of every app's origins) with an **open-loop Poisson workload**
over N synthetic users, the way a production deployment would see
traffic: arrivals do not wait for earlier responses, each user owns a
cache shard and replays a recorded app session request-by-request, and
a background sweeper purges expired entries the way a long-lived proxy
must.  Reported numbers separate *virtual* performance (client latency
percentiles, hit rate) from *host* cost (wall seconds per request,
simulator events per second, peak RSS) — the latter is what must stay
flat as N grows, and ``benchmarks/test_perf_scale.py`` asserts exactly
that: per-request wall cost at 10k users within ~2× of 100 users.

The session template is recorded once per app by running the real
:class:`~repro.device.runtime.AppRuntime` against a private simulator
(launch + the paper's main interaction), so the replayed requests
exercise the genuine dependency chains: predecessors spawn prefetches,
successors hit the per-user cache, and the priority queue sees real
contention.
"""

from __future__ import annotations

import time
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.analysis.pipeline import AnalysisOptions, analyze_apk
from repro.apps.registry import get_app
from repro.device.runtime import AppRuntime
from repro.httpmsg.message import Request
from repro.metrics.perf import PERF, rss_peak_bytes
from repro.metrics.stats import percentile
from repro.metrics.trace import TRACER
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import DirectTransport, OriginMap
from repro.proxy.cache import PrefetchCache
from repro.proxy.multiapp import MultiAppProxy, MultiAppTransport
from repro.proxy.proxy import AccelerationProxy
from repro.server.content import Catalog

DEFAULT_APPS = ("wish", "doordash")
DEFAULT_RATE_PER_USER = 0.5  # requests / user / virtual second
PURGE_INTERVAL = 5.0  # virtual seconds between expiry sweeps
SAMPLE_INTERVAL = 1.0  # virtual seconds between cache-size samples


def record_session_template(app_name: str, catalog_seed: int = 7) -> List[Request]:
    """Replay-ready request sequence of one real app session.

    Runs launch plus the app's scripted main interaction on a private
    simulator over the direct topology and returns copies of every
    request the device issued, in order.
    """
    spec = get_app(app_name)
    apk = spec.build_apk()
    sim = Simulator()
    origins, _ = spec.build_origin_map(sim, Catalog(catalog_seed))
    transport = DirectTransport(sim, Link(rtt=0.055, shared=True), origins)
    runtime = AppRuntime(apk, transport, sim, spec.default_profile("template-user"))

    def flow() -> Generator:
        yield sim.spawn(runtime.launch())
        yield Delay(6.0)
        for event in spec.main_flow:
            yield sim.spawn(runtime.dispatch(*event))
        return None

    sim.run_process(flow())
    return [t.request.copy() for t in runtime.transaction_log]


class _ScaleDeployment:
    """One MultiAppProxy serving every requested app's origins."""

    def __init__(
        self,
        apps: Sequence[str],
        catalog_seed: int = 7,
        max_entries_per_user: Optional[int] = None,
        max_bytes: Optional[int] = None,
        indexed_cache: bool = True,
        lazy_drain: bool = True,
    ) -> None:
        self.sim = Simulator()
        self.origins = OriginMap()
        self.multi = MultiAppProxy(self.sim, self.origins)
        self.templates: Dict[str, List[Request]] = {}
        for name in apps:
            spec = get_app(name)
            app_origins, _ = spec.build_origin_map(self.sim, Catalog(catalog_seed))
            for origin, endpoint in app_origins.origins().items():
                self.origins.register(
                    origin,
                    endpoint,
                    app_origins.link_for(Request("GET", _origin_uri(origin))),
                )
            analysis = analyze_apk(spec.build_apk(), AnalysisOptions(run_slicing=False))
            cache = PrefetchCache(
                indexed=indexed_cache,
                max_entries_per_user=max_entries_per_user,
                max_bytes=max_bytes,
            )
            proxy = AccelerationProxy(
                self.sim, app_origins, analysis, cache=cache
            )
            proxy.prefetcher.lazy_drain = lazy_drain
            self.multi.register_app(name, proxy)
            self.templates[name] = record_session_template(name, catalog_seed)


def _origin_uri(origin: str):
    from repro.httpmsg.uri import Uri

    return Uri.parse(origin + "/")


def run_scale(
    users: int,
    duration: float,
    apps: Sequence[str] = DEFAULT_APPS,
    rate_per_user: float = DEFAULT_RATE_PER_USER,
    seed: int = 0,
    max_entries_per_user: Optional[int] = None,
    max_bytes: Optional[int] = None,
    indexed_cache: bool = True,
    lazy_drain: bool = True,
    access_rtt: float = 0.055,
    trace_path: Optional[str] = None,
    trace_sample: Optional[float] = None,
    trace_seed: int = 0,
    trace_capacity: int = 65_536,
) -> Dict[str, object]:
    """Serve an open-loop Poisson workload; returns the metrics row.

    ``users`` synthetic users are split round-robin across ``apps``;
    each replays its app's recorded session cyclically, one request
    per arrival.  Arrivals form a Poisson process of total rate
    ``users * rate_per_user`` over ``duration`` virtual seconds —
    open-loop: an arrival never waits for a previous response, so a
    slow serving core cannot throttle its own measured load.  Wall
    time is measured around the event loop only (deployment and
    workload construction excluded).

    Request-lifecycle tracing is armed when ``trace_path`` or
    ``trace_sample`` is given: the global tracer samples
    ``trace_sample`` of requests (default 1.0) into a ring of
    ``trace_capacity`` records, feeds per-stage span histograms into
    the PERF registry, and — when ``trace_path`` is set — exports the
    buffered records as JSONL after the run.  Left off (the default),
    the serving core pays only the one-branch disabled check.
    """
    import random

    if users < 1:
        raise ValueError("users must be >= 1")
    tracing = trace_path is not None or trace_sample is not None
    apps = tuple(apps)
    deployment = _ScaleDeployment(
        apps,
        max_entries_per_user=max_entries_per_user,
        max_bytes=max_bytes,
        indexed_cache=indexed_cache,
        lazy_drain=lazy_drain,
    )
    sim = deployment.sim
    multi = deployment.multi
    rng = random.Random(seed)

    user_app = [apps[i % len(apps)] for i in range(users)]
    # each user starts at a random point of its session template so the
    # request mix is stationary: the share of chain-triggering
    # predecessor requests is the same whether a cell sees each user
    # once (large N, short duration) or many times (small N) — without
    # this, large-N cells would be 100% session-start requests and the
    # per-request cost comparison across population sizes would be
    # comparing different workloads
    user_position: Dict[int, int] = {}
    transports: Dict[int, MultiAppTransport] = {}
    latencies: List[float] = []
    state = {"sent": 0, "completed": 0, "peak_entries": 0}

    def transport_for(user_index: int) -> MultiAppTransport:
        transport = transports.get(user_index)
        if transport is None:
            transport = MultiAppTransport(
                sim,
                Link(rtt=access_rtt, shared=True, name="access-u{}".format(user_index)),
                multi,
            )
            transports[user_index] = transport
        return transport

    def send_one(user_index: int, request: Request) -> Generator:
        started_at = sim.now
        yield sim.spawn(
            transport_for(user_index).send(request, "u{}".format(user_index))
        )
        latencies.append(sim.now - started_at)
        state["completed"] += 1
        return None

    def arrivals() -> Generator:
        total_rate = users * rate_per_user
        while True:
            yield Delay(rng.expovariate(total_rate))
            if sim.now >= duration:
                return None
            user_index = rng.randrange(users)
            template = deployment.templates[user_app[user_index]]
            position = user_position.get(user_index)
            if position is None:
                position = rng.randrange(len(template))
            request = template[position % len(template)]
            user_position[user_index] = position + 1
            state["sent"] += 1
            sim.spawn(send_one(user_index, request.copy()))

    def sweeper() -> Generator:
        while sim.now < duration:
            yield Delay(PURGE_INTERVAL)
            multi.purge_expired(sim.now)
        return None

    def sampler() -> Generator:
        while sim.now < duration:
            yield Delay(SAMPLE_INTERVAL)
            entries = multi.cache_entries()
            if entries > state["peak_entries"]:
                state["peak_entries"] = entries
        return None

    sim.spawn(arrivals())
    sim.spawn(sweeper())
    sim.spawn(sampler())

    if tracing:
        TRACER.configure(
            sample_rate=1.0 if trace_sample is None else trace_sample,
            capacity=trace_capacity,
            seed=trace_seed,
            registry=PERF.registry,
            sim_clock=lambda: sim.now,
        )
        TRACER.enable()
    try:
        with PERF.capture():
            wall_started = time.perf_counter()
            sim.run()
            wall_s = time.perf_counter() - wall_started
            sim_events = PERF.get("sim.events")
    finally:
        if tracing:
            TRACER.disable()

    trace_stats: Optional[Dict[str, object]] = None
    if tracing:
        trace_stats = TRACER.stats()
        if trace_path is not None:
            trace_stats["exported"] = TRACER.export_jsonl(trace_path)
            trace_stats["path"] = trace_path

    # per-stage latency histograms out of the registry: PERF.stage
    # feeds stage_seconds{stage=...}; sampled trace spans feed
    # span_wall_seconds{stage=...} (reported under a "span:" prefix)
    stage_latency: Dict[str, Dict[str, float]] = {}
    for metric, prefix in (("stage_seconds", ""), ("span_wall_seconds", "span:")):
        for labels, histogram in PERF.registry.series(metric):
            if not histogram.count:
                continue
            stage_latency[prefix + labels.get("stage", "")] = {
                "count": histogram.count,
                "p50_us": 1e6 * histogram.percentile(50),
                "p95_us": 1e6 * histogram.percentile(95),
                "p99_us": 1e6 * histogram.percentile(99),
                "mean_us": 1e6 * histogram.mean,
                "total_s": histogram.sum,
            }
    miss_causes = {
        name[len("cache.miss."):]: count
        for name, count in PERF.counters.items()
        if name.startswith("cache.miss.")
    }

    final_entries = multi.cache_entries()
    if final_entries > state["peak_entries"]:
        state["peak_entries"] = final_entries
    served = sum(proxy.served_prefetched for _, proxy in multi._apps)
    forwarded = sum(proxy.forwarded for _, proxy in multi._apps)
    issued = sum(proxy.prefetcher.issued for _, proxy in multi._apps)
    caches = [proxy.cache for _, proxy in multi._apps]
    requests = state["completed"]
    answered = served + forwarded
    return {
        "users": users,
        "apps": list(apps),
        "duration_s": duration,
        "rate_per_user": rate_per_user,
        "seed": seed,
        "requests": requests,
        "requests_sent": state["sent"],
        "wall_s": wall_s,
        "per_request_wall_us": (1e6 * wall_s / requests) if requests else 0.0,
        "requests_per_wall_s": (requests / wall_s) if wall_s else 0.0,
        "sim_events": sim_events,
        "sim_events_per_wall_s": (sim_events / wall_s) if wall_s else 0.0,
        "latency_p50_ms": 1000 * percentile(latencies, 50) if latencies else 0.0,
        "latency_p95_ms": 1000 * percentile(latencies, 95) if latencies else 0.0,
        "latency_p99_ms": 1000 * percentile(latencies, 99) if latencies else 0.0,
        "hit_rate": (served / answered) if answered else 0.0,
        "served_prefetched": served,
        "forwarded": forwarded,
        "prefetch_issued": issued,
        "peak_cache_entries": state["peak_entries"],
        "final_cache_entries": final_entries,
        "cache_stored": sum(c.stored for c in caches),
        "cache_expired_evictions": sum(c.expired_evictions for c in caches),
        "cache_lru_evictions": sum(c.lru_evictions for c in caches),
        "cache_wheel_purged": sum(c.wheel_purged for c in caches),
        "peak_rss_bytes": rss_peak_bytes(),
        "indexed_cache": indexed_cache,
        "lazy_drain": lazy_drain,
        "max_entries_per_user": max_entries_per_user,
        "max_bytes": max_bytes,
        "stage_latency_us": stage_latency,
        "miss_causes": miss_causes,
        "trace": trace_stats,
    }


def run_scale_sweep(
    user_counts: Sequence[int],
    duration_for: Optional[Dict[int, float]] = None,
    default_duration: float = 10.0,
    **kwargs,
) -> Dict[str, object]:
    """One row per population size, plus the scaling verdict.

    ``duration_for`` lets callers shrink virtual duration as N grows
    (open-loop arrival volume is ``N * rate * duration``, so a fixed
    duration would make the 10k-user cell 100× the 100-user cell's
    request count without telling us anything new about per-request
    cost).  The verdict compares smallest-vs-largest per-request wall
    cost — the number that must stay flat when the serving core is
    population-independent.  When tracing to a file across several
    cells, each cell writes ``<stem>-<users><ext>`` so no cell
    overwrites another's export.
    """
    import os

    trace_path = kwargs.pop("trace_path", None)
    rows = []
    for count in user_counts:
        duration = (duration_for or {}).get(count, default_duration)
        cell_path = trace_path
        if trace_path is not None and len(user_counts) > 1:
            stem, ext = os.path.splitext(trace_path)
            cell_path = "{}-{}{}".format(stem, count, ext or ".jsonl")
        rows.append(run_scale(count, duration, trace_path=cell_path, **kwargs))
    smallest, largest = rows[0], rows[-1]
    ratio = (
        largest["per_request_wall_us"] / smallest["per_request_wall_us"]
        if smallest["per_request_wall_us"]
        else float("inf")
    )
    return {
        "rows": rows,
        "derived": {
            "smallest_users": smallest["users"],
            "largest_users": largest["users"],
            "per_request_cost_ratio": ratio,
        },
    }
