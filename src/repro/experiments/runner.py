"""Experiment runners: one function per table/figure of the paper.

Each function returns plain dict/list rows so benchmarks can print
them and tests can assert on the shapes the paper reports (who wins,
by roughly what factor, where the crossovers fall).

The sweeps are factored into *cell* functions — one independent
(app, mode, RTT, probability, seed) unit each, module-level and
picklable — which the serial runners below iterate in canonical
order.  :mod:`repro.experiments.parallel` fans the same cells out over
a process pool and merges in the same order, so the serial functions
double as the differential oracle for the parallel engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.dependency import dependency_chains, fan_out
from repro.analysis.model import AnalysisResult
from repro.apps.registry import all_apps, get_app
from repro.device.fuzzing import MonkeyFuzzer
from repro.device.runtime import AppRuntime, InteractionResult
from repro.device.traces import generate_user_study, replay_trace
from repro.experiments.scenario import Scenario, prepare_app
from repro.metrics.stats import cdf_points, mean, median, percentile, reduction
from repro.netsim.sim import Delay
from repro.proxy.instances import build_runtime_signatures, SignatureMatcher

THINK_TIME = 6.0


# ======================================================================
# Table 1 & Table 2 — app inventory and main-interaction RTTs
# ======================================================================
def table1_rows() -> List[Dict[str, str]]:
    return [
        {
            "app": spec.label,
            "category": spec.category,
            "main_interaction": spec.main_interaction,
        }
        for spec in all_apps().values()
    ]


def table2_rows() -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for spec in all_apps().values():
        for label, rtt in spec.transactions_of_main:
            rows.append(
                {"app": spec.label, "transaction": label, "rtt_ms": round(rtt * 1000)}
            )
    return rows


# ======================================================================
# Table 3 — signatures/dependencies: APPx vs UI fuzzing vs user study
# ======================================================================
def _observed_coverage(
    analysis: AnalysisResult, runtimes: Sequence[AppRuntime]
) -> Dict[str, int]:
    """Coverage counts for traffic-derived signature identification."""
    matcher = SignatureMatcher(build_runtime_signatures(analysis))
    observed_sites = set()
    for runtime in runtimes:
        for transaction in runtime.transaction_log:
            signature = matcher.match(transaction.request)
            if signature is not None:
                observed_sites.add(signature.site)
    successors = {s.site for s in analysis.prefetchable()}
    observed_edges = [
        edge
        for edge in analysis.dependencies
        if edge.pred_site in observed_sites and edge.succ_site in observed_sites
    ]
    chains = dependency_chains(observed_edges)
    return {
        "signatures": len(observed_sites),
        "prefetchable": len(observed_sites & successors),
        "dependencies": len(observed_edges),
        "max_chain": max((len(c) for c in chains), default=0),
    }


def table3_row(
    name: str,
    fuzz_duration: float = 600.0,
    trace_participants: int = 10,
    trace_duration: float = 180.0,
    seed: int = 3,
) -> Dict[str, object]:
    """One Table 3 cell: static vs fuzzing vs user-study for one app."""
    spec = get_app(name)
    prepared = prepare_app(name)
    analysis = prepared.analysis
    static = analysis.summary()

    # automatic UI fuzzing (Monkey, 500 ms interval)
    fuzz_scenario = Scenario(prepared, proxied=False)
    fuzz_runtime = fuzz_scenario.runtime("fuzz-user")
    fuzzer = MonkeyFuzzer(fuzz_runtime, seed=seed)
    fuzz_scenario.sim.run_process(fuzzer.run(fuzz_duration))
    fuzz = _observed_coverage(analysis, [fuzz_runtime])

    # user-study traces
    trace_scenario = Scenario(prepared, proxied=False)
    traces = generate_user_study(
        prepared.apk, participants=trace_participants,
        duration=trace_duration, seed=seed,
    )
    runtimes = []

    def replay_all():
        processes = []
        for trace in traces:
            runtime = trace_scenario.runtime(trace.user)
            runtimes.append(runtime)
            processes.append(
                trace_scenario.sim.spawn(replay_trace(runtime, trace))
            )
        for process in processes:
            yield process

    trace_scenario.sim.run_process(replay_all())
    study = _observed_coverage(analysis, runtimes)

    return {
        "app": spec.label,
        "appx": static,
        "fuzzing": fuzz,
        "user_study": study,
    }


def table3_rows(
    fuzz_duration: float = 600.0,
    trace_participants: int = 10,
    trace_duration: float = 180.0,
    seed: int = 3,
    apps: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    return [
        table3_row(name, fuzz_duration, trace_participants, trace_duration, seed)
        for name in (apps if apps is not None else list(all_apps()))
    ]


# ======================================================================
# Fig. 11 / Fig. 12 — dependency case studies
# ======================================================================
def fig11_doordash_chain() -> List[str]:
    """The longest successive-dependency chain in DoorDash."""
    analysis = prepare_app("doordash").analysis
    chains = dependency_chains(analysis.dependencies)
    return max(chains, key=len) if chains else []


def fig12_wish_fanout() -> Dict[str, int]:
    """Successor fan-out per Wish predecessor (detail feeds several)."""
    analysis = prepare_app("wish").analysis
    return fan_out(analysis.dependencies)


# ======================================================================
# Fig. 13 / Fig. 14 — main interaction & launch latency, Orig vs APPx
# ======================================================================
def _run_flow(
    scenario: Scenario,
    user: str,
    include_main: bool,
    think_time: float = THINK_TIME,
) -> Tuple[InteractionResult, Optional[InteractionResult]]:
    runtime = scenario.runtime(user)
    spec = scenario.spec

    def flow():
        launch = yield scenario.sim.spawn(runtime.launch())
        main_result = None
        if include_main:
            for event, index in spec.main_flow:
                yield Delay(think_time)
                main_result = yield scenario.sim.spawn(
                    runtime.dispatch(event, index)
                )
        return launch, main_result

    return scenario.sim.run_process(flow())


def fig13_row(name: str, runs: int = 10) -> Dict[str, object]:
    """One Fig. 13 cell: main-interaction latency for one app."""
    spec = get_app(name)
    prepared = prepare_app(name)
    row: Dict[str, object] = {"app": spec.label}
    for mode in ("orig", "appx"):
        scenario = Scenario(
            prepared,
            proxied=(mode == "appx"),
            enabled_classes=spec.main_site_classes or None,
        )
        latencies, network, processing = [], [], []
        for run in range(runs):
            _, main_result = _run_flow(scenario, "user-{}".format(run), True)
            latencies.append(main_result.latency)
            network.append(main_result.network_delay)
            processing.append(main_result.processing_delay)
        row[mode] = {
            "latency": mean(latencies),
            "network": mean(network),
            "processing": mean(processing),
        }
    row["reduction"] = reduction(row["orig"]["latency"], row["appx"]["latency"])
    return row


def fig13_main_interaction(
    runs: int = 10, apps: Optional[Sequence[str]] = None
) -> List[Dict[str, object]]:
    """User-perceived latency of the main interaction, Orig vs APPx."""
    return [
        fig13_row(name, runs)
        for name in (apps if apps is not None else list(all_apps()))
    ]


def fig14_row(name: str, runs: int = 10) -> Dict[str, object]:
    """One Fig. 14 cell: app-launch latency for one app."""
    spec = get_app(name)
    prepared = prepare_app(name)
    row: Dict[str, object] = {"app": spec.label}
    for mode in ("orig", "appx"):
        scenario = Scenario(
            prepared,
            proxied=(mode == "appx"),
            enabled_classes=spec.launch_site_classes or None,
        )
        latencies, network, processing = [], [], []
        for run in range(runs):
            launch, _ = _run_flow(scenario, "user-{}".format(run), False)
            latencies.append(launch.latency)
            network.append(launch.network_delay)
            processing.append(launch.processing_delay)
            # a second launch in the same session benefits from the
            # state learned during the first; measure steady state
        row[mode] = {
            "latency": mean(latencies),
            "network": mean(network),
            "processing": mean(processing),
        }
    row["reduction"] = reduction(row["orig"]["latency"], row["appx"]["latency"])
    return row


def fig14_app_launch(
    runs: int = 10, apps: Optional[Sequence[str]] = None
) -> List[Dict[str, object]]:
    """App-launch latency, Orig vs APPx (launch sites prefetchable)."""
    return [
        fig14_row(name, runs)
        for name in (apps if apps is not None else list(all_apps()))
    ]


# ======================================================================
# user-study replay (shared by Figs. 15–17)
# ======================================================================
def user_study_run(
    app_name: str,
    proxied: bool,
    proxy_server_rtt: Optional[float] = None,
    participants: int = 10,
    duration: float = 180.0,
    seed: int = 11,
    global_probability: float = 1.0,
    max_chain_depth: int = 1,
) -> Dict[str, object]:
    """Replay the synthetic user study; returns latencies + data usage.

    ``max_chain_depth=1`` is the configured data-usage policy (C4): the
    proxy prefetches direct successors of transactions the client
    actually consumed, so speculative fan-out does not compound
    per chain hop.  Chains still complete progressively because served
    prefetched responses are themselves observed transactions.
    """
    prepared = prepare_app(app_name)
    spec = prepared.spec
    scenario = Scenario(
        prepared,
        proxied=proxied,
        origin_rtt_override=proxy_server_rtt,
        enabled_classes=spec.main_site_classes or None,
        global_probability=global_probability,
        max_chain_depth=max_chain_depth,
    )
    traces = generate_user_study(
        prepared.apk, participants=participants, duration=duration, seed=seed
    )
    all_results: List[List[InteractionResult]] = []

    def replay_all():
        processes = [
            scenario.sim.spawn(replay_trace(scenario.runtime(trace.user), trace))
            for trace in traces
        ]
        outcome = []
        for process in processes:
            outcome.append((yield process))
        return outcome

    all_results = scenario.sim.run_process(replay_all())
    main_event = spec.main_event
    main_latencies = [
        result.latency
        for results in all_results
        for result in results
        if result.event == main_event
    ]
    return {
        "app": spec.label,
        "proxied": proxied,
        "main_latencies": main_latencies,
        "all_latencies": [
            result.latency for results in all_results for result in results
        ],
        "demand_bytes": scenario.demand_bytes(),
        "server_bytes": scenario.server_bytes(),
        "proxy_stats": scenario.proxy.stats() if scenario.proxy else {},
    }


def fig15_cell(
    name: str, rtt: float, participants: int = 10, seed: int = 11
) -> Dict[str, object]:
    """One Fig. 15 cell: Orig vs APPx p90 for one (app, RTT) pair."""
    spec = get_app(name)
    orig = user_study_run(
        name, proxied=False, proxy_server_rtt=rtt,
        participants=participants, seed=seed,
    )
    appx = user_study_run(
        name, proxied=True, proxy_server_rtt=rtt,
        participants=participants, seed=seed,
    )
    orig_p90 = percentile(orig["main_latencies"], 90.0)
    appx_p90 = percentile(appx["main_latencies"], 90.0)
    return {
        "app": spec.label,
        "rtt_ms": round(rtt * 1000),
        "orig_p90": orig_p90,
        "appx_p90": appx_p90,
        "reduction": reduction(orig_p90, appx_p90),
    }


def fig15_percentile_sweep(
    rtts: Sequence[float] = (0.050, 0.100, 0.150),
    participants: int = 10,
    seed: int = 11,
    apps: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """90th-percentile main-interaction latency vs proxy↔server RTT."""
    return [
        fig15_cell(name, rtt, participants, seed)
        for name in (apps if apps is not None else list(all_apps()))
        for rtt in rtts
    ]


def fig16_cell(
    name: str, rtt: float, participants: int = 10, seed: int = 11
) -> Dict[str, object]:
    """One Fig. 16 cell: CDFs + data usage for one (app, RTT) pair."""
    spec = get_app(name)
    orig = user_study_run(
        name, proxied=False, proxy_server_rtt=rtt,
        participants=participants, seed=seed,
    )
    appx = user_study_run(
        name, proxied=True, proxy_server_rtt=rtt,
        participants=participants, seed=seed,
    )
    orig_median = median(orig["main_latencies"])
    appx_median = median(appx["main_latencies"])
    usage = (
        appx["server_bytes"] / float(orig["demand_bytes"])
        if orig["demand_bytes"]
        else 0.0
    )
    return {
        "app": spec.label,
        "rtt_ms": round(rtt * 1000),
        "orig_median": orig_median,
        "appx_median": appx_median,
        "median_reduction": reduction(orig_median, appx_median),
        "orig_cdf": cdf_points(orig["main_latencies"]),
        "appx_cdf": cdf_points(appx["main_latencies"]),
        "normalized_data_usage": usage,
    }


def fig16_cdf_and_usage(
    rtts: Sequence[float] = (0.050, 0.100, 0.150),
    participants: int = 10,
    seed: int = 11,
    apps: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Latency CDFs plus normalized data usage per app per RTT."""
    return [
        fig16_cell(name, rtt, participants, seed)
        for name in (apps if apps is not None else list(all_apps()))
        for rtt in rtts
    ]


def ablation_analysis_rows() -> List[Dict[str, object]]:
    """Dependencies found with each §4.1 analyzer extension disabled."""
    from repro.analysis.pipeline import AnalysisOptions, analyze_apk

    variants = [
        ("full", AnalysisOptions(run_slicing=False)),
        ("no_intents", AnalysisOptions(run_slicing=False, intent_support=False)),
        ("no_rx", AnalysisOptions(run_slicing=False, rx_support=False)),
        ("no_alias", AnalysisOptions(run_slicing=False, precise_heap=False)),
    ]
    rows: List[Dict[str, object]] = []
    for name, spec in all_apps().items():
        apk = spec.build_apk()
        row: Dict[str, object] = {"app": spec.label}
        for label, options in variants:
            row[label] = analyze_apk(apk, options).summary()["dependencies"]
        rows.append(row)
    return rows


def fig17_baseline(participants: int = 10, seed: int = 11) -> int:
    """Fig. 17's normalization cell: unproxied Wish demand bytes."""
    baseline = user_study_run(
        "wish", proxied=False, participants=participants, seed=seed
    )
    return baseline["demand_bytes"]


def fig17_cell(
    probability: float, participants: int = 10, seed: int = 11
) -> Dict[str, object]:
    """One Fig. 17 cell: one prefetch-probability point (un-normalized)."""
    run = user_study_run(
        "wish",
        proxied=True,
        participants=participants,
        seed=seed,
        global_probability=probability,
    )
    return {
        "probability": probability,
        "median_latency": median(run["main_latencies"]),
        "server_bytes": run["server_bytes"],
    }


def fig17_finalize(
    cells: Sequence[Dict[str, object]], baseline_bytes: int
) -> List[Dict[str, object]]:
    """Normalize per-probability cells against the baseline demand."""
    return [
        {
            "probability": cell["probability"],
            "median_latency": cell["median_latency"],
            "normalized_data_usage": (
                cell["server_bytes"] / float(baseline_bytes)
                if baseline_bytes
                else 0.0
            ),
        }
        for cell in cells
    ]


def fig17_probability_tradeoff(
    probabilities: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.9, 1.0),
    participants: int = 10,
    seed: int = 11,
) -> List[Dict[str, object]]:
    """Wish: median latency vs data usage as prefetch probability varies."""
    baseline_bytes = fig17_baseline(participants, seed)
    return fig17_finalize(
        [fig17_cell(probability, participants, seed) for probability in probabilities],
        baseline_bytes,
    )
