"""Command-line interface: ``python -m repro <command>``.

Commands::

    apps                      list the bundled app models
    analyze APP [--sig-file]  run static analysis (phase 1)
    verify APP                run testing & verification (phase 2)
    demo APP                  accelerate one session, print the speedup
    experiment NAME           run one table/figure experiment
    figs [NAME...] --jobs N   run figure sweeps over a process pool
    cache [--clear]           inspect / clear the analysis artifact cache
    bench                     signature-dispatch microbenchmark
    scale --users N...        million-user serving-core load harness
                              (--trace out.jsonl samples request traces)
    stats TRACE.jsonl         per-stage / per-cause rollup of a trace
    lint [PATHS...]           AST static-analysis gate (determinism,
                              metrics hygiene, multiprocessing safety)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis import analyze_apk
from repro.analysis.serialize import dumps as dump_signatures
from repro.apps import all_apps, get_app


def _command_apps(args) -> int:
    print("{:<14} {:<16} {}".format("name", "category", "main interaction"))
    for name, spec in all_apps().items():
        print("{:<14} {:<16} {}".format(name, spec.category, spec.main_interaction))
    return 0


def _command_analyze(args) -> int:
    spec = get_app(args.app)
    apk = spec.build_apk()
    result = analyze_apk(apk)
    if args.report:
        from repro.analysis.report import render_report

        print(render_report(result))
        return 0
    if args.sig_file:
        with open(args.sig_file, "w") as handle:
            handle.write(dump_signatures(result))
        print("wrote {} signatures to {}".format(len(result.signatures), args.sig_file))
        return 0
    summary = result.summary()
    print("{} — {} IR instructions".format(spec.label, apk.instruction_count()))
    print(
        "signatures: {signatures}  prefetchable: {prefetchable}  "
        "dependencies: {dependencies}  max chain: {max_chain}".format(**summary)
    )
    for signature in result.signatures:
        marker = "*" if signature.is_successor() else " "
        flags = " [side-effect]" if signature.side_effect else ""
        print(
            " {} {:<40} {} {}{}".format(
                marker,
                signature.site,
                signature.request.method,
                signature.request.uri.regex(),
                flags,
            )
        )
    print("dependencies:")
    for edge in result.dependencies:
        print(
            "   {}:{}".format(edge.pred_site, edge.pred_path.to_string())
        )
        print("     -> {}:{}".format(edge.succ_site, edge.succ_path.to_string()))
    return 0


def _command_verify(args) -> int:
    from repro.proxy.verification import run_verification
    from repro.server.content import Catalog

    spec = get_app(args.app)
    apk = spec.build_apk()
    result = analyze_apk(apk)
    config, report = run_verification(
        apk,
        result,
        build_origin_map=lambda sim: spec.build_origin_map(sim, Catalog())[0],
        profile=spec.default_profile("verify-user"),
        fuzz_duration=args.duration,
    )
    print("fuzz interactions: {}".format(report.fuzz_interactions))
    print("prefetch successes: {}".format(sum(report.prefetch_successes.values())))
    if report.disabled:
        print("disabled signatures:")
        for site, reason in report.disabled.items():
            print("  {} ({})".format(site, reason))
    print("expiration estimates:")
    for site, expiry in sorted(report.expiry_estimates.items()):
        print("  {:<42} {:>8.0f} s".format(site, expiry))
    if args.config_file:
        with open(args.config_file, "w") as handle:
            handle.write(config.to_json())
        print("wrote configuration to {}".format(args.config_file))
    return 0


def _command_demo(args) -> int:
    from repro.device.runtime import AppRuntime
    from repro.netsim.link import Link
    from repro.netsim.sim import Delay, Simulator
    from repro.netsim.transport import DirectTransport
    from repro.proxy import AccelerationProxy, ProxiedTransport
    from repro.server.content import Catalog

    spec = get_app(args.app)
    apk = spec.build_apk()
    analysis = analyze_apk(apk)

    def session(proxied):
        sim = Simulator()
        origins, _ = spec.build_origin_map(sim, Catalog())
        access = Link(rtt=0.055, shared=True)
        proxy = None
        if proxied:
            proxy = AccelerationProxy(sim, origins, analysis)
            transport = ProxiedTransport(sim, access, proxy)
        else:
            transport = DirectTransport(sim, access, origins)
        runtime = AppRuntime(apk, transport, sim, spec.default_profile())

        def flow():
            yield sim.spawn(runtime.launch())
            yield Delay(6.0)
            result = yield sim.spawn(runtime.dispatch(*spec.main_flow[-1]))
            return result

        return sim.run_process(flow()), proxy

    original, _ = session(False)
    accelerated, proxy = session(True)
    print("{}: {}".format(spec.label, spec.main_interaction))
    print("  without proxy: {:.0f} ms".format(1000 * original.latency))
    print(
        "  with APPx:     {:.0f} ms  ({:.0f}% lower, {} served from cache)".format(
            1000 * accelerated.latency,
            100 * (1 - accelerated.latency / original.latency),
            proxy.served_prefetched,
        )
    )
    return 0


def _command_bench(args) -> int:
    from repro.experiments.matching_bench import run_matching_bench

    if args.requests <= 0:
        print("bench: --requests must be positive", file=sys.stderr)
        return 2
    result = run_matching_bench(total_requests=args.requests, seed=args.seed)
    workload = result["workload"]
    naive, indexed = result["naive"], result["indexed"]
    print(
        "workload: {} requests over {} signatures ({} apps), {} matched".format(
            workload["requests"],
            workload["signatures"],
            len(workload["apps"]),
            workload["matched"],
        )
    )
    print(
        "naive scan:   {:8.1f} regex attempts/request  {:8.3f} s".format(
            naive["regex_attempts_per_request"], naive["wall_s"]
        )
    )
    print(
        "indexed path: {:8.1f} regex attempts/request  {:8.3f} s  "
        "({:.1f} candidates/request, {} memo hits)".format(
            indexed["regex_attempts_per_request"],
            indexed["wall_s"],
            indexed["candidates_per_request"],
            indexed["memo_hits"],
        )
    )
    print(
        "regex-attempt ratio: {:.1f}x   wall speedup: {:.1f}x   mismatches: {}".format(
            result["derived"]["regex_attempt_ratio"],
            result["derived"]["wall_speedup"],
            result["differential"]["mismatches"],
        )
    )
    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote trajectory to {}".format(args.output))
    return 0 if result["differential"]["mismatches"] == 0 else 1


def _print_heartbeat(shard, payload, tracker=None) -> None:
    """One mid-run heartbeat line (stderr; stdout keeps the tables)."""
    readings = payload.get("readings") or {}
    lag = ""
    if tracker is not None and tracker.lagging:
        lag = "  LAGGING={}".format(sorted(tracker.lagging))
    print(
        "hb shard={} t={:.2f}s requests={} queue={} p99={:.0f}ms hit={:.2f}%{}".format(
            "-" if shard is None else shard,
            float(payload.get("sim_now") or 0.0),
            payload.get("requests"),
            payload.get("queue_depth"),
            float(readings.get("request_p99_ms") or 0.0),
            100.0 * float(readings.get("hit_rate") or 0.0),
            lag,
        ),
        file=sys.stderr,
    )


def _command_scale(args) -> int:
    from repro.experiments.scale import (
        format_strategy_table,
        run_scale_sweep,
        run_strategy_comparison,
    )

    if any(count < 1 for count in args.users):
        print("scale: --users values must be positive", file=sys.stderr)
        return 2
    if args.duration <= 0:
        print("scale: --duration must be positive", file=sys.stderr)
        return 2
    if args.trace_sample is not None and not 0.0 <= args.trace_sample <= 1.0:
        print("scale: --trace-sample must be within [0, 1]", file=sys.stderr)
        return 2
    if args.admission_threshold is not None and not (
        0.0 <= args.admission_threshold <= 1.0
    ):
        print(
            "scale: --admission-threshold must be within [0, 1]",
            file=sys.stderr,
        )
        return 2
    if args.adaptive_budget and args.max_entries_total is None:
        print(
            "scale: --adaptive-budget requires --max-entries-total",
            file=sys.stderr,
        )
        return 2
    if args.workers < 1:
        print("scale: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.compare_strategies and args.workers > 1:
        print(
            "scale: --compare-strategies cannot be combined with --workers "
            "(the comparison is a single-process differential)",
            file=sys.stderr,
        )
        return 2
    if args.workers > 1 and any(count < args.workers for count in args.users):
        print(
            "scale: every --users value must be >= --workers",
            file=sys.stderr,
        )
        return 2
    if args.heartbeat_interval is not None and args.heartbeat_interval <= 0:
        print("scale: --heartbeat-interval must be positive", file=sys.stderr)
        return 2
    if args.slo_report and args.slo is None:
        print("scale: --slo-report requires --slo", file=sys.stderr)
        return 2
    if args.compare_strategies and (
        args.slo is not None or args.telemetry or args.heartbeat_interval
    ):
        print(
            "scale: the live telemetry plane (--slo/--telemetry/"
            "--heartbeat-interval) cannot be combined with "
            "--compare-strategies",
            file=sys.stderr,
        )
        return 2
    slo_config = None
    if args.slo is not None:
        from repro.metrics.slo import load_slo_config

        try:
            slo_config = load_slo_config(args.slo)
        except (OSError, ValueError) as error:
            print("scale: --slo: {}".format(error), file=sys.stderr)
            return 2
    heartbeat_interval = args.heartbeat_interval
    if heartbeat_interval is None and slo_config is not None and args.workers > 1:
        # --slo on a fleet implies liveness reporting: that is how the
        # supervisor sees per-shard windowed p99/hit-rate mid-run
        heartbeat_interval = 1.0
    telemetry_on = (
        args.telemetry or slo_config is not None or heartbeat_interval is not None
    )
    telemetry_kwargs = dict(
        warm_start=args.warm_start,
        learn_queue_capacity=args.learn_queue_capacity,
        learn_drain_budget=args.learn_drain_budget,
        telemetry=args.telemetry,
        slo_config=slo_config,
        heartbeat_interval=heartbeat_interval,
        backpressure=not args.no_backpressure,
    )
    policy_kwargs = dict(
        max_entries_per_user=args.max_entries_per_user,
        max_entries_total=args.max_entries_total,
        adaptive_budget=args.adaptive_budget,
        admission_threshold=args.admission_threshold,
        estimate_expiration=args.estimate_expiration,
        learn_mode=args.learn_mode,
    )
    if args.compare_strategies:
        comparison = run_strategy_comparison(
            max(args.users),
            args.duration,
            apps=args.apps,
            rate_per_user=args.rate,
            seed=args.seed,
            indexed_cache=not args.naive_cache,
            lazy_drain=not args.rebuild_drain,
            **policy_kwargs,
        )
        print(format_strategy_table(comparison))
        if args.output:
            with open(args.output, "w") as handle:
                json.dump(comparison, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print("wrote comparison to {}".format(args.output))
        return 0
    if args.workers > 1:
        from repro.experiments.fleet import FleetWorkerError, run_fleet

        rows = []
        try:
            for count in args.users:
                cell_trace = args.trace
                if args.trace is not None and len(args.users) > 1:
                    stem, ext = os.path.splitext(args.trace)
                    cell_trace = "{}-{}{}".format(stem, count, ext or ".jsonl")
                rows.append(
                    run_fleet(
                        count,
                        args.duration,
                        workers=args.workers,
                        apps=args.apps,
                        rate_per_user=args.rate,
                        seed=args.seed,
                        indexed_cache=not args.naive_cache,
                        lazy_drain=not args.rebuild_drain,
                        trace_path=cell_trace,
                        trace_sample=args.trace_sample,
                        trace_seed=args.trace_seed,
                        strategy=args.strategy,
                        worker_timeout=args.worker_timeout,
                        prom_path=args.prom_out or args.prom,
                        heartbeat_log=(
                            _print_heartbeat
                            if heartbeat_interval is not None
                            else None
                        ),
                        **telemetry_kwargs,
                        **policy_kwargs,
                    )
                )
        except FleetWorkerError as error:
            print("scale: {}".format(error), file=sys.stderr)
            return 1
        smallest, largest = rows[0], rows[-1]
        result = {
            "rows": rows,
            "derived": {
                "smallest_users": smallest["users"],
                "largest_users": largest["users"],
                "per_request_cost_ratio": (
                    largest["per_request_wall_us"]
                    / smallest["per_request_wall_us"]
                    if smallest["per_request_wall_us"]
                    else float("inf")
                ),
            },
        }
    else:
        result = run_scale_sweep(
            args.users,
            default_duration=args.duration,
            apps=args.apps,
            rate_per_user=args.rate,
            seed=args.seed,
            indexed_cache=not args.naive_cache,
            lazy_drain=not args.rebuild_drain,
            trace_path=args.trace,
            trace_sample=args.trace_sample,
            trace_seed=args.trace_seed,
            strategy=args.strategy,
            heartbeat_sink=(
                (lambda payload: _print_heartbeat(payload.get("shard"), payload))
                if heartbeat_interval is not None
                else None
            ),
            shard=0 if heartbeat_interval is not None else None,
            **telemetry_kwargs,
            **policy_kwargs,
        )
    header = (
        "{:>8} {:>9} {:>9} {:>11} {:>9} {:>9} {:>9} {:>7} {:>9} {:>9}".format(
            "users", "requests", "wall_s", "us/request", "events/s",
            "p50_ms", "p99_ms", "hit", "peak_ent", "rss_mb",
        )
    )
    print(header)
    for row in result["rows"]:
        print(
            "{:>8} {:>9} {:>9.3f} {:>11.1f} {:>9.0f} {:>9.1f} {:>9.1f} "
            "{:>6.0f}% {:>9} {:>9.1f}".format(
                row["users"],
                row["requests"],
                row["wall_s"],
                row["per_request_wall_us"],
                row["sim_events_per_wall_s"],
                row["latency_p50_ms"],
                row["latency_p99_ms"],
                100 * row["hit_rate"],
                row["peak_cache_entries"],
                row["peak_rss_bytes"] / 1e6,
            )
        )
    derived = result["derived"]
    print(
        "per-request wall cost at {} users is {:.2f}x the {}-user cost".format(
            derived["largest_users"],
            derived["per_request_cost_ratio"],
            derived["smallest_users"],
        )
    )
    if args.workers > 1:
        for row in result["rows"]:
            fleet = row["fleet"]
            print(
                "fleet: {} workers, shard users {}, shard requests {}, "
                "{:.0f} requests/wall-s".format(
                    row["workers"],
                    fleet["shard_users"],
                    fleet["shard_requests"],
                    row["requests_per_wall_s"],
                )
            )
    if telemetry_on:
        for row in result["rows"]:
            live = row.get("live") or {}
            readings = live.get("readings") or {}
            print(
                "live[{} users]: window={:.0f}s rate={:.0f}/s p50={:.1f}ms "
                "p99={:.1f}ms hit={:.2f}% overflow={:.0f} wasted={:.0f} "
                "ticks={} heartbeats={} alerts={}".format(
                    row["users"],
                    readings.get("window_s", 0.0),
                    readings.get("request_rate", 0.0),
                    readings.get("request_p50_ms", 0.0),
                    readings.get("request_p99_ms", 0.0),
                    100.0 * readings.get("hit_rate", 0.0),
                    readings.get("overflow", 0.0),
                    readings.get("wasted", 0.0),
                    live.get("ticks", 0),
                    live.get("heartbeats_sent", 0),
                    live.get("alerts", 0),
                )
            )
            hb = row.get("heartbeats")
            if hb:
                print(
                    "heartbeats[{} users]: received={} max_skew={:.2f}s "
                    "lagging={}".format(
                        row["users"],
                        hb["received"],
                        hb["max_skew_s"],
                        hb["lagging_shards"] or "none",
                    )
                )
            bp = row.get("backpressure")
            if bp:
                print(
                    "backpressure[{} users]: budget_grow={} budget_shrink={} "
                    "admission_tighten={} admission_relax={} "
                    "drain_budgets={}".format(
                        row["users"],
                        bp["budget_grow"],
                        bp["budget_shrink"],
                        bp["admission_tighten"],
                        bp["admission_relax"],
                        bp["drain_budgets"],
                    )
                )
    slo_passed = True
    if slo_config is not None:
        for row in result["rows"]:
            report = row.get("slo") or {}
            for objective in report.get("objectives", []):
                print(
                    "slo[{} users] {:<16} burn_slow={:.2f} burn_fast={:.2f} "
                    "bad/total={:.0f}/{:.0f} {}".format(
                        row["users"],
                        objective["objective"],
                        objective["burn_slow"],
                        objective["burn_fast"],
                        objective["bad"],
                        objective["total"],
                        "VIOLATED" if objective["violated"] else "ok",
                    )
                )
            if not report.get("passed", True):
                slo_passed = False
        print("slo verdict: {}".format("PASS" if slo_passed else "FAIL"))
        if args.slo_report:
            slo_report = {
                "passed": slo_passed,
                "config": args.slo,
                "cells": [
                    {
                        "users": row["users"],
                        "workers": row.get("workers", args.workers),
                        "slo": row.get("slo"),
                        "live_readings": (row.get("live") or {}).get("readings"),
                        "backpressure": row.get("backpressure"),
                    }
                    for row in result["rows"]
                ],
            }
            with open(args.slo_report, "w") as handle:
                json.dump(slo_report, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print("wrote SLO report to {}".format(args.slo_report))
    tracing = args.trace is not None or args.trace_sample is not None
    if tracing:
        last = result["rows"][-1]
        _print_stage_table(last.get("stage_latency_us") or {})
        _print_miss_causes(last.get("miss_causes") or {})
        for row in result["rows"]:
            trace_stats = row.get("trace") or {}
            if "exported" in trace_stats:
                print(
                    "wrote {} trace record(s) to {}".format(
                        trace_stats["exported"], trace_stats["path"]
                    )
                )
    if args.prom or args.prom_out:
        if args.workers == 1:
            from repro.metrics.perf import PERF

            if args.prom:
                with open(args.prom, "w") as handle:
                    handle.write(PERF.registry.render_prometheus())
            if args.prom_out:
                # atomic: scrapers tailing the file never see a torn dump
                PERF.registry.dump_prometheus(args.prom_out)
        # workers > 1: run_fleet already wrote the folded registry
        # (atomically) to --prom-out or --prom
        for path in (args.prom, args.prom_out):
            if path and (args.workers == 1 or path == (args.prom_out or args.prom)):
                print("wrote Prometheus metrics to {}".format(path))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote trajectory to {}".format(args.output))
    return 0 if slo_passed else 1


def _print_stage_table(stage_latency) -> None:
    if not stage_latency:
        print("(no per-stage latency samples)")
        return
    print(
        "{:<28} {:>9} {:>11} {:>11} {:>11}".format(
            "stage", "count", "p50_us", "p95_us", "p99_us"
        )
    )
    for stage in sorted(stage_latency):
        row = stage_latency[stage]
        print(
            "{:<28} {:>9} {:>11.1f} {:>11.1f} {:>11.1f}".format(
                stage,
                row["count"],
                row.get("p50_us", row.get("wall_us_p50", 0.0)),
                row.get("p95_us", row.get("wall_us_p95", 0.0)),
                row.get("p99_us", row.get("wall_us_p99", 0.0)),
            )
        )


def _print_miss_causes(miss_causes) -> None:
    if not miss_causes:
        print("(no cache misses recorded)")
        return
    total = sum(miss_causes.values())
    print("cache misses by cause:")
    for cause in sorted(miss_causes, key=miss_causes.get, reverse=True):
        count = miss_causes[cause]
        print(
            "  {:<20} {:>9}  ({:.1f}%)".format(cause, count, 100.0 * count / total)
        )


def _command_stats(args) -> int:
    from repro.metrics.trace import aggregate_records, read_jsonl, registry_from_records

    try:
        records = read_jsonl(args.trace, validate=True)
    except (OSError, ValueError) as error:
        print("stats: {}".format(error), file=sys.stderr)
        return 1
    summary = aggregate_records(records)
    print(
        "{} trace record(s): {}".format(
            summary["records"],
            ", ".join(
                "{} {}".format(count, kind)
                for kind, count in sorted(summary["kinds"].items())
            )
            or "none",
        )
    )
    stages = {
        stage: {
            "count": row["count"],
            "p50_us": row["wall_us_p50"],
            "p95_us": row["wall_us_p95"],
            "p99_us": row["wall_us_p99"],
        }
        for stage, row in summary["stages"].items()
    }
    _print_stage_table(stages)
    _print_miss_causes(summary["miss_causes"])
    if summary["by_signature"]:
        print("per-signature cache outcomes:")
        for signature in sorted(summary["by_signature"]):
            row = summary["by_signature"][signature]
            answered = row["hits"] + row["misses"]
            print(
                "  {:<42} {:>6} hits {:>6} misses  ({:.0f}% hit)".format(
                    signature,
                    row["hits"],
                    row["misses"],
                    100.0 * row["hits"] / answered if answered else 0.0,
                )
            )
    if summary.get("prefetch_by_signature"):
        print("per-signature prefetch efficacy:")
        print(
            "  {:<42} {:>7} {:>7} {:>7} {:>7}".format(
                "signature", "issued", "hits", "wasted", "hit%"
            )
        )
        for signature in sorted(summary["prefetch_by_signature"]):
            row = summary["prefetch_by_signature"][signature]
            issued = row.get("issued", 0)
            print(
                "  {:<42} {:>7} {:>7} {:>7} {:>6.0f}%".format(
                    signature,
                    issued,
                    row.get("hits", 0),
                    row.get("wasted", 0),
                    100.0 * row.get("hits", 0) / issued if issued else 0.0,
                )
            )
    if args.prom:
        registry = registry_from_records(records)
        with open(args.prom, "w") as handle:
            handle.write(registry.render_prometheus())
        print("wrote Prometheus metrics to {}".format(args.prom))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote aggregate to {}".format(args.json))
    return 0


def _command_lint(args) -> int:
    from repro.qa import render_json, render_text, rule_catalog, run_lint

    if args.list_rules:
        for entry in rule_catalog():
            print(
                "{:<52} [{}]".format(
                    ",".join(entry["ids"]), ",".join(entry["profiles"])
                )
            )
            print("    {}".format(entry["description"]))
        return 0
    try:
        report = run_lint(args.paths, root=args.root, strict=args.strict)
    except FileNotFoundError as error:
        print("lint: {}".format(error), file=sys.stderr)
        return 2
    if args.json is not None:
        rendered = render_json(report)
        if args.json == "-":
            print(rendered)
        else:
            with open(args.json, "w") as handle:
                handle.write(rendered)
                handle.write("\n")
            print("wrote lint report to {}".format(args.json), file=sys.stderr)
    if args.json != "-":
        print(render_text(report))
    return report.exit_code


def _print_rows(rows) -> None:
    if isinstance(rows, dict):
        for key, value in rows.items():
            print("{}: {}".format(key, value))
    elif isinstance(rows, list) and rows and isinstance(rows[0], dict):
        for row in rows:
            print({k: v for k, v in row.items() if not k.endswith("_cdf")})
    else:
        print(rows)


def _command_figs(args) -> int:
    from repro.experiments.cache import AnalysisArtifactCache
    from repro.experiments.parallel import PARALLEL_FIGURES, run_figures

    names = args.names or list(PARALLEL_FIGURES)
    unknown = [name for name in names if name not in PARALLEL_FIGURES]
    if unknown:
        print(
            "unknown figure(s) {}; choose from {}".format(
                ", ".join(unknown), ", ".join(PARALLEL_FIGURES)
            ),
            file=sys.stderr,
        )
        return 2
    artifact_cache = None
    if not args.no_cache:
        artifact_cache = AnalysisArtifactCache(args.cache_dir)
    params = {
        "table3": {"fuzz_duration": 300.0, "trace_participants": 6},
        "fig13": {"runs": 5},
        "fig14": {"runs": 5},
        "fig15": {"participants": args.participants},
        "fig16": {"participants": args.participants},
        "fig17": {"participants": args.participants},
    }
    results = run_figures(
        names,
        jobs=args.jobs,
        params_by_figure=params,
        artifact_cache=artifact_cache,
    )
    for name, rows in results.items():
        print("== {} ==".format(name))
        _print_rows(rows)
    if artifact_cache is not None:
        print("analysis cache: {}".format(artifact_cache.stats()))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote rows to {}".format(args.output))
    return 0


def _command_cache(args) -> int:
    from repro.experiments.cache import AnalysisArtifactCache

    artifact_cache = AnalysisArtifactCache(args.cache_dir)
    if args.clear:
        removed = artifact_cache.clear()
        print("removed {} cached artifact(s) from {}".format(removed, artifact_cache.root))
        return 0
    if args.invalidate:
        removed = artifact_cache.invalidate(args.invalidate)
        print(
            "removed {} cached artifact(s) for {!r}".format(removed, args.invalidate)
        )
        return 0
    entries = artifact_cache.entries()
    print("cache dir: {}".format(artifact_cache.root))
    if not entries:
        print("(empty)")
    for file_name, app in entries.items():
        print("  {:<14} {}".format(app, file_name))
    return 0


_EXPERIMENTS = {
    "table1": ("table1_rows", {}),
    "table2": ("table2_rows", {}),
    "table3": ("table3_rows", {"fuzz_duration": 300.0, "trace_participants": 6}),
    "fig11": ("fig11_doordash_chain", {}),
    "fig12": ("fig12_wish_fanout", {}),
    "fig13": ("fig13_main_interaction", {"runs": 5}),
    "fig14": ("fig14_app_launch", {"runs": 5}),
    "fig15": ("fig15_percentile_sweep", {"participants": 6}),
    "fig16": ("fig16_cdf_and_usage", {"participants": 6}),
    "fig17": ("fig17_probability_tradeoff", {"participants": 6}),
    "ablation": ("ablation_analysis_rows", {}),
}


def _command_experiment(args) -> int:
    from repro.experiments import runner

    if args.name not in _EXPERIMENTS:
        print(
            "unknown experiment {!r}; choose from {}".format(
                args.name, ", ".join(sorted(_EXPERIMENTS))
            ),
            file=sys.stderr,
        )
        return 2
    function_name, kwargs = _EXPERIMENTS[args.name]
    rows = getattr(runner, function_name)(**kwargs)
    _print_rows(rows)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="APPx app-acceleration framework (CoNEXT 2018)"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("apps", help="list the bundled app models")

    analyze = commands.add_parser("analyze", help="static analysis (phase 1)")
    analyze.add_argument("app")
    analyze.add_argument("--sig-file", help="write the signature file here")
    analyze.add_argument(
        "--report", action="store_true",
        help="print the full Fig. 5-style signature report",
    )

    verify = commands.add_parser("verify", help="testing & verification (phase 2)")
    verify.add_argument("app")
    verify.add_argument("--duration", type=float, default=60.0)
    verify.add_argument("--config-file", help="write the generated config here")

    demo = commands.add_parser("demo", help="one accelerated session")
    demo.add_argument("app")

    experiment = commands.add_parser("experiment", help="run one table/figure")
    experiment.add_argument("name", help="table1..table3, fig11..fig17")

    figs = commands.add_parser(
        "figs", help="run figure sweeps over a process pool"
    )
    figs.add_argument(
        "names", nargs="*",
        help="figures to run (default: table3 fig13..fig17)",
    )
    figs.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the scenario fan-out (default: serial)",
    )
    figs.add_argument(
        "--participants", type=int, default=6,
        help="user-study participants per cell (default: 6)",
    )
    figs.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk analysis artifact cache",
    )
    figs.add_argument(
        "--cache-dir", default=None,
        help="artifact cache directory (default: REPRO_CACHE_DIR or ~/.cache/repro-appx)",
    )
    figs.add_argument("--output", help="also write all rows to this JSON file")

    cache = commands.add_parser(
        "cache", help="inspect / clear the analysis artifact cache"
    )
    cache.add_argument("--clear", action="store_true", help="drop every entry")
    cache.add_argument(
        "--invalidate", metavar="APP", help="drop one app's entries"
    )
    cache.add_argument("--cache-dir", default=None, help="cache directory")

    bench = commands.add_parser(
        "bench", help="signature-dispatch microbenchmark (indexed vs naive)"
    )
    bench.add_argument("--requests", type=int, default=10_000)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--output",
        default="BENCH_matching.json",
        help="trajectory file to write (default: BENCH_matching.json)",
    )

    scale = commands.add_parser(
        "scale", help="serving-core load harness (open-loop Poisson users)"
    )
    scale.add_argument(
        "--users", type=int, nargs="+", default=[100, 1000],
        help="population sizes to sweep (default: 100 1000)",
    )
    scale.add_argument(
        "--duration", type=float, default=10.0,
        help="virtual seconds of workload per cell (default: 10)",
    )
    scale.add_argument(
        "--apps", nargs="+", default=["wish", "doordash"],
        help="apps served by the shared proxy (default: wish doordash)",
    )
    scale.add_argument(
        "--rate", type=float, default=0.5,
        help="requests per user per virtual second (default: 0.5)",
    )
    scale.add_argument("--seed", type=int, default=0)
    scale.add_argument(
        "--max-entries-per-user", type=int, default=None,
        help="bound each user's cache shard (LRU eviction)",
    )
    scale.add_argument(
        "--strategy", choices=["appx", "history", "none"], default="appx",
        help="prefetch strategy: appx (dependency-driven), history "
             "(most-frequent-successor baseline), none (default: appx)",
    )
    scale.add_argument(
        "--compare-strategies", action="store_true",
        help="run all three strategies on the identical workload and "
             "print the comparison table (uses the largest --users value)",
    )
    scale.add_argument(
        "--learn-mode", choices=["inline", "deferred"], default="deferred",
        help="deferred: request path only matches + enqueues, the learn "
             "pipeline runs in a budgeted drain off the critical path; "
             "inline: learn on observe (differential oracle; the seed "
             "behavior) (default: deferred)",
    )
    scale.add_argument(
        "--max-entries-total", type=int, default=None,
        help="global cache entry budget shared across all users",
    )
    scale.add_argument(
        "--adaptive-budget", action="store_true",
        help="apportion --max-entries-total by recent per-user hit mass",
    )
    scale.add_argument(
        "--admission-threshold", type=float, default=None, metavar="PROB",
        help="stop prefetching signatures whose observed hit probability "
             "falls below PROB (hit-aware admission, §4.4)",
    )
    scale.add_argument(
        "--estimate-expiration", action="store_true",
        help="learn per-signature TTLs online by probing (§4.3) instead "
             "of using the configured defaults",
    )
    scale.add_argument(
        "--naive-cache", action="store_true",
        help="use the unindexed full-scan cache (differential oracle)",
    )
    scale.add_argument(
        "--rebuild-drain", action="store_true",
        help="use the O(W) rebuild prefetch drain (differential oracle)",
    )
    scale.add_argument(
        "--output", default=None,
        help="also write the sweep rows to this JSON file",
    )
    scale.add_argument(
        "--trace", default=None, metavar="JSONL",
        help="export sampled request-lifecycle traces to this JSONL file",
    )
    scale.add_argument(
        "--trace-sample", type=float, default=None, metavar="RATE",
        help="trace sampling rate in [0, 1] (arms tracing; default 1.0 "
             "when --trace is given)",
    )
    scale.add_argument(
        "--trace-seed", type=int, default=0,
        help="sampling PRNG seed (default: 0, deterministic sample set)",
    )
    scale.add_argument(
        "--prom", default=None, metavar="FILE",
        help="write a Prometheus text-format metrics dump after the sweep",
    )
    scale.add_argument(
        "--prom-out", default=None, metavar="FILE",
        help="like --prom but atomic (tmp file + rename): scrapers never "
             "observe a torn dump",
    )
    scale.add_argument(
        "--warm-start", action="store_true",
        help="start every session past its first request so dependency "
             "prefetching is armed from t=0",
    )
    scale.add_argument(
        "--learn-queue-capacity", type=int, default=None, metavar="N",
        help="bound the deferred learn queue (overflow drops + counter)",
    )
    scale.add_argument(
        "--learn-drain-budget", type=int, default=None, metavar="N",
        help="max learn observations drained per request pump",
    )
    scale.add_argument(
        "--telemetry", action="store_true",
        help="arm the live telemetry plane: rolling-window rates and "
             "percentiles sampled every 0.5 virtual seconds",
    )
    scale.add_argument(
        "--slo", nargs="?", const="benchmarks/slo.json", default=None,
        metavar="FILE",
        help="evaluate SLO burn rates per window against FILE (default: "
             "benchmarks/slo.json); a violated objective makes the "
             "command exit 1",
    )
    scale.add_argument(
        "--slo-report", default=None, metavar="FILE",
        help="write the end-of-run SLO verdict as JSON (requires --slo)",
    )
    scale.add_argument(
        "--heartbeat-interval", type=float, default=None, metavar="SECONDS",
        help="ship windowed snapshots to the supervisor every SECONDS of "
             "virtual time (default: 1.0 when --slo is set with "
             "--workers > 1, else off)",
    )
    scale.add_argument(
        "--no-backpressure", action="store_true",
        help="disable the closed loop that grows learn drain budgets on "
             "overflow and tightens admission on sustained hit-rate burn",
    )
    scale.add_argument(
        "--workers", type=int, default=1,
        help="shard users across N proxy worker processes via consistent "
             "hashing (1 = serve in-process; default: 1)",
    )
    scale.add_argument(
        "--worker-timeout", type=float, default=300.0, metavar="SECONDS",
        help="fleet startup / serve deadline per phase (default: 300)",
    )

    lint = commands.add_parser(
        "lint", help="AST static-analysis gate (see DESIGN.md §14)"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to lint (default: src)",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="also flag unused suppressions (the CI configuration)",
    )
    lint.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="FILE",
        help="write the JSON report to FILE ('-' or bare flag: stdout)",
    )
    lint.add_argument(
        "--root", default=None,
        help="repo root for relpath/profile resolution (default: cwd)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )

    stats = commands.add_parser(
        "stats", help="per-stage / per-cause rollup of a JSONL trace export"
    )
    stats.add_argument("trace", help="trace file written by 'scale --trace'")
    stats.add_argument(
        "--prom", default=None, metavar="FILE",
        help="also write Prometheus text-format metrics rebuilt from the trace",
    )
    stats.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the aggregate summary as JSON",
    )

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "apps": _command_apps,
        "analyze": _command_analyze,
        "verify": _command_verify,
        "demo": _command_demo,
        "experiment": _command_experiment,
        "figs": _command_figs,
        "cache": _command_cache,
        "bench": _command_bench,
        "scale": _command_scale,
        "stats": _command_stats,
        "lint": _command_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
