"""Origin-server simulation.

Each evaluated app gets a REST backend (:mod:`repro.server.backends`)
built on :class:`OriginServer`: deterministic content from
:class:`~repro.server.content.Catalog`, per-route service times,
session cookies, content rotation (so prefetched responses can go
stale), and fault injection for the verification-phase tests.
"""

from repro.server.content import Catalog
from repro.server.origin import OriginServer, Route

__all__ = ["Catalog", "OriginServer", "Route"]
