"""Deterministic content catalogs for the origin backends.

Replaces the paper's live commercial services: items, merchants,
restaurants, menus, and advisors are generated from a seed so every run
(and every test) sees identical data.  IDs are short hex strings in the
style of the paper's examples (``09cf``, ``556e``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, List

_ADJECTIVES = [
    "silk", "coral", "amber", "ivory", "cobalt", "crimson", "olive",
    "slate", "pearl", "onyx", "maple", "cedar", "lunar", "polar",
]
_NOUNS = [
    "lantern", "harbor", "meadow", "canyon", "willow", "ember",
    "summit", "garden", "anchor", "breeze", "orchard", "prairie",
]


def filler(label: str, size: int) -> str:
    """Deterministic filler text of roughly ``size`` bytes.

    Backends pad JSON payloads with this so response wire sizes land in
    the ranges the paper reports (e.g. ~14 KB product-detail bodies).
    """
    if size <= 0:
        return ""
    unit = hashlib.sha1(label.encode()).hexdigest()
    repeats = size // len(unit) + 1
    return (unit * repeats)[:size]


def stable_id(*parts: Any) -> str:
    """Short deterministic hex id from the given parts."""
    digest = hashlib.sha1("|".join(str(p) for p in parts).encode()).hexdigest()
    return digest[:4]


def stable_name(*parts: Any) -> str:
    digest = hashlib.sha1(("name|" + "|".join(str(p) for p in parts)).encode()).digest()
    adjective = _ADJECTIVES[digest[0] % len(_ADJECTIVES)]
    noun = _NOUNS[digest[1] % len(_NOUNS)]
    return "{} {}".format(adjective.capitalize(), noun)


class Catalog:
    """Seeded catalog of everything the five backends serve."""

    def __init__(self, seed: int = 7) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def _rng_for(self, *parts: Any) -> random.Random:
        return random.Random("{}|{}".format(self.seed, "|".join(str(p) for p in parts)))

    # ------------------------------------------------------------------
    # shopping (Wish / Geek)
    # ------------------------------------------------------------------
    def product_ids(self, app: str, feed_version: int, count: int = 30, user: str = "") -> List[str]:
        """The rotating recommendation feed for one user."""
        rng = self._rng_for(app, "feed", feed_version, user)
        return [stable_id(app, "product", rng.randrange(10_000)) for _ in range(count)]

    def product(self, app: str, product_id: str) -> Dict[str, Any]:
        rng = self._rng_for(app, "product", product_id)
        merchant_name = stable_name(app, "merchant", rng.randrange(200))
        return {
            "id": product_id,
            "name": stable_name(app, "product", product_id),
            "price": rng.randrange(3, 120),
            "can_ship": rng.random() < 0.9,
            "aspect_rat": round(rng.uniform(0.7, 1.4), 2),
            "merchant_name": merchant_name,
            "rating": round(rng.uniform(2.5, 5.0), 1),
            "num_bought": rng.randrange(10, 50_000),
        }

    def related_product_ids(self, app: str, product_id: str, count: int = 6) -> List[str]:
        rng = self._rng_for(app, "related", product_id)
        return [stable_id(app, "product", rng.randrange(10_000)) for _ in range(count)]

    def merchant(self, app: str, merchant_name: str) -> Dict[str, Any]:
        rng = self._rng_for(app, "merchant", merchant_name)
        merchant_id = stable_id(app, "merchant", merchant_name)
        return {
            "id": merchant_id,
            "name": merchant_name,
            "profile_image": "/merchant-img/{}.png".format(merchant_id),
            "item_ids": [
                stable_id(app, "product", rng.randrange(10_000)) for _ in range(8)
            ],
        }

    def merchant_ratings(self, app: str, merchant_id: str) -> Dict[str, Any]:
        rng = self._rng_for(app, "ratings", merchant_id)
        return {
            "merchant_id": merchant_id,
            "average": round(rng.uniform(3.0, 5.0), 2),
            "count": rng.randrange(5, 5_000),
            "recent": [
                {"stars": rng.randrange(1, 6), "comment": stable_name(app, merchant_id, i)}
                for i in range(5)
            ],
        }

    def group_buy(self, app: str, product_id: str) -> Dict[str, Any]:
        rng = self._rng_for(app, "groupbuy", product_id)
        return {
            "product_id": product_id,
            "active": rng.random() < 0.4,
            "discount_pct": rng.randrange(5, 40),
            "participants": rng.randrange(0, 200),
        }

    # ------------------------------------------------------------------
    # food delivery (DoorDash / Postmates)
    # ------------------------------------------------------------------
    def restaurant_ids(self, app: str, region: str, count: int = 12) -> List[str]:
        rng = self._rng_for(app, "restaurants", region)
        return [stable_id(app, "store", rng.randrange(5_000)) for _ in range(count)]

    def restaurant(self, app: str, store_id: str) -> Dict[str, Any]:
        rng = self._rng_for(app, "store", store_id)
        return {
            "id": store_id,
            "name": stable_name(app, "store", store_id) + " Kitchen",
            "cuisine": rng.choice(
                ["thai", "sushi", "burgers", "pizza", "tacos", "noodles", "salads"]
            ),
            "rating": round(rng.uniform(3.0, 5.0), 1),
            "delivery_fee": rng.randrange(0, 7),
            "eta_minutes": rng.randrange(15, 60),
            "image": "/store-img/{}.jpg".format(store_id),
        }

    def menu(self, app: str, store_id: str) -> Dict[str, Any]:
        rng = self._rng_for(app, "menu", store_id)
        categories = []
        for c in range(3):
            items = []
            for i in range(4):
                item_id = stable_id(app, "menu-item", store_id, c, i)
                items.append(
                    {
                        "id": item_id,
                        "name": stable_name(app, "dish", item_id),
                        "price": rng.randrange(4, 30),
                    }
                )
            categories.append(
                {"name": rng.choice(["Mains", "Sides", "Drinks", "Desserts"]), "items": items}
            )
        return {"id": stable_id(app, "menu", store_id), "store_id": store_id, "categories": categories}

    def menu_item(self, app: str, item_id: str) -> Dict[str, Any]:
        rng = self._rng_for(app, "menu-item-detail", item_id)
        return {
            "id": item_id,
            "name": stable_name(app, "dish", item_id),
            "description": "A very {} dish".format(stable_name(app, item_id).lower()),
            "price": rng.randrange(4, 30),
            "calories": rng.randrange(150, 1400),
            "option_group": stable_id(app, "options", item_id),
        }

    def option_group(self, app: str, group_id: str) -> Dict[str, Any]:
        rng = self._rng_for(app, "options", group_id)
        return {
            "id": group_id,
            "options": [
                {
                    "id": stable_id(app, "option", group_id, i),
                    "name": stable_name(app, "option", group_id, i),
                    "extra": rng.randrange(0, 4),
                }
                for i in range(4)
            ],
        }

    def suggestions(self, app: str, item_id: str, count: int = 6) -> List[str]:
        rng = self._rng_for(app, "suggest", item_id)
        return [stable_id(app, "menu-item", rng.randrange(5_000), 0, 0) for _ in range(count)]

    def schedule(self, app: str, store_id: str) -> Dict[str, Any]:
        rng = self._rng_for(app, "schedule", store_id)
        open_hour = rng.randrange(7, 12)
        return {
            "store_id": store_id,
            "open": "{:02d}:00".format(open_hour),
            "close": "{:02d}:00".format(open_hour + rng.randrange(8, 13)),
            "days": ["mon", "tue", "wed", "thu", "fri", "sat", "sun"][: rng.randrange(5, 8)],
        }

    # ------------------------------------------------------------------
    # psychic reading (Purple Ocean)
    # ------------------------------------------------------------------
    def advisor_ids(self, app: str, count: int = 15) -> List[str]:
        rng = self._rng_for(app, "advisors")
        return [stable_id(app, "advisor", rng.randrange(2_000)) for _ in range(count)]

    def advisor(self, app: str, advisor_id: str) -> Dict[str, Any]:
        rng = self._rng_for(app, "advisor", advisor_id)
        return {
            "id": advisor_id,
            "login": "mystic_{}".format(advisor_id),
            "name": stable_name(app, "advisor", advisor_id),
            "specialty": rng.choice(
                ["tarot", "astrology", "dream analysis", "numerology", "palmistry"]
            ),
            "rate_per_minute": round(rng.uniform(0.99, 9.99), 2),
            "rating": round(rng.uniform(3.5, 5.0), 2),
            "profile_image": "/media/profile/{}.png".format(advisor_id),
            "video_still": "/media/still/{}.jpg".format(advisor_id),
        }

    # ------------------------------------------------------------------
    # binary content sizes (bytes)
    # ------------------------------------------------------------------
    def image_size(self, app: str, label: str, mean: int, spread: float = 0.25) -> int:
        rng = self._rng_for(app, "imgsize", label)
        low = int(mean * (1 - spread))
        high = int(mean * (1 + spread))
        return rng.randrange(low, max(high, low + 1))
