"""Wish backend: the paper's working example (#1 shopping app).

API origin serves the feed, product details, related items, merchant
pages, ratings, and the cart; the image origin serves thumbnails
(~42 KB), product images (~315 KB — the size the paper cites), and
merchant profile images.
"""

from __future__ import annotations

from repro.httpmsg.body import BlobBody
from repro.httpmsg.message import Request, Response
from repro.netsim.sim import Simulator
from repro.server.content import Catalog, filler
from repro.server.origin import OriginServer

FEED_COUNT = 30
THUMB_BYTES = 42_000
PRODUCT_IMAGE_BYTES = 315_000
MERCHANT_IMAGE_BYTES = 30_000
DETAIL_PAD_BYTES = 10_000


def _feed(server: OriginServer, request: Request, user: str) -> Response:
    count = FEED_COUNT
    if request.body.kind == "form":
        try:
            count = int(request.body.get("count", str(FEED_COUNT)))
        except (TypeError, ValueError):
            count = FEED_COUNT
    version = server.content_version()
    products = []
    for product_id in server.catalog.product_ids("wish", version, count=count, user=user):
        product = server.catalog.product("wish", product_id)
        products.append(
            {
                "aspect_rat": product["aspect_rat"],
                "product_info": {
                    "id": product["id"],
                    "name": product["name"],
                    "price": product["price"],
                    "can_ship": product["can_ship"],
                    "merchant_name": product["merchant_name"],
                },
            }
        )
    return server.json({"data": {"products": products, "feed_version": version}})


def _product_detail(server: OriginServer, request: Request, user: str) -> Response:
    cid = request.body.get("cid", "") if request.body.kind == "form" else ""
    product = server.catalog.product("wish", cid)
    payload = {
        "data": {
            "contest": {
                "id": product["id"],
                "name": product["name"],
                "price": product["price"],
                "merchant_name": product["merchant_name"],
                "rating": product["rating"],
                "num_bought": product["num_bought"],
                "shipping": "standard" if product["can_ship"] else "none",
                "cache": server.content_version(),
                "info": filler("wish-detail-{}".format(cid), DETAIL_PAD_BYTES),
            }
        }
    }
    return server.json(payload)


def _related(server: OriginServer, request: Request, user: str) -> Response:
    cid = request.body.get("cid", "") if request.body.kind == "form" else ""
    related = [
        {
            "id": rid,
            "name": server.catalog.product("wish", rid)["name"],
            "price": server.catalog.product("wish", rid)["price"],
        }
        for rid in server.catalog.related_product_ids("wish", cid)
    ]
    return server.json({"related": related})


def _merchant(server: OriginServer, request: Request, user: str) -> Response:
    name = request.uri.query_get("q", "")
    merchant = server.catalog.merchant("wish", name)
    return server.json({"merchant": merchant})


def _ratings(server: OriginServer, request: Request, user: str) -> Response:
    merchant_id = request.uri.query_get("id", "")
    return server.json(server.catalog.merchant_ratings("wish", merchant_id))


def _cart_add(server: OriginServer, request: Request, user: str) -> Response:
    cid = request.body.get("cid", "") if request.body.kind == "form" else ""
    server.requests_by_route["cart-adds"] = (
        server.requests_by_route.get("cart-adds", 0) + 1
    )
    return server.json({"ok": True, "cid": cid, "cart_size": 1})


def _notifications(server: OriginServer, request: Request, user: str) -> Response:
    notes = [
        {"id": nid, "promo_id": stable_promo(nid)}
        for nid in server.catalog.advisor_ids("wish-notes", count=4)
    ]
    return server.json({"notes": notes})


def stable_promo(note_id: str) -> str:
    from repro.server.content import stable_id

    return stable_id("wish", "promo", note_id)


def _promo(server: OriginServer, request: Request, user: str) -> Response:
    pid = request.uri.query_get("pid", "")
    return server.json({"promo": {"id": pid, "discount": 15, "headline": "Deal!"}})


def build_wish_api(sim: Simulator, catalog: Catalog) -> OriginServer:
    server = OriginServer(sim, "https://api.wish.com", catalog)
    server.route("POST", "/api/get-feed", _feed, service_time=0.30, name="get-feed")
    server.route("POST", "/product/get", _product_detail, service_time=0.35, name="product-get")
    server.route("POST", "/related/get", _related, service_time=0.20, name="related-get")
    server.route("GET", "/api/merchant", _merchant, service_time=0.25, name="merchant")
    server.route("GET", "/api/ratings/get", _ratings, service_time=0.15, name="ratings")
    server.route("POST", "/cart/add", _cart_add, service_time=0.10, name="cart-add")
    server.route("GET", "/api/notifications", _notifications, service_time=0.05, name="notifications")
    server.route("GET", "/api/promo", _promo, service_time=0.05, name="promo")
    return server


def _thumbnail(server: OriginServer, request: Request, user: str) -> Response:
    cid = request.uri.query_get("cid", "")
    size = server.catalog.image_size("wish", "thumb-{}".format(cid), THUMB_BYTES)
    return Response(200, body=BlobBody("wish-thumb-{}".format(cid), size))


def _product_image(server: OriginServer, request: Request, user: str) -> Response:
    cid = request.uri.query_get("cid", "")
    size = server.catalog.image_size("wish", "product-{}".format(cid), PRODUCT_IMAGE_BYTES)
    return Response(200, body=BlobBody("wish-product-{}".format(cid), size))


def _merchant_image(server: OriginServer, request: Request, user: str) -> Response:
    merchant_id = request._captures.get("mid", "").split(".")[0]
    size = server.catalog.image_size(
        "wish", "merchant-{}".format(merchant_id), MERCHANT_IMAGE_BYTES
    )
    return Response(200, body=BlobBody("wish-merchant-{}".format(merchant_id), size))


def _promo_image(server: OriginServer, request: Request, user: str) -> Response:
    pid = request.uri.query_get("pid", "")
    size = server.catalog.image_size("wish", "promo-{}".format(pid), 24_000)
    return Response(200, body=BlobBody("wish-promo-{}".format(pid), size))


def build_wish_images(sim: Simulator, catalog: Catalog) -> OriginServer:
    server = OriginServer(sim, "https://img.wish.com", catalog)
    server.route("GET", "/img", _thumbnail, service_time=0.005, name="thumb")
    server.route("GET", "/promo-img", _promo_image, service_time=0.005, name="promo-img")
    server.route("GET", "/product-img", _product_image, service_time=0.008, name="product-img")
    server.route(
        "GET", "/merchant-img/<mid>", _merchant_image, service_time=0.005, name="merchant-img"
    )
    return server
