"""DoorDash backend — food delivery (Fig. 11's successive chain).

Single API origin (145 ms RTT in Table 2) serving the store list, each
store's menu and schedule, per-item details, options, suggestions, and
store images.
"""

from __future__ import annotations

from repro.httpmsg.body import BlobBody
from repro.httpmsg.message import Request, Response
from repro.netsim.sim import Simulator
from repro.server.content import Catalog, filler
from repro.server.origin import OriginServer

STORE_IMAGE_BYTES = 90_000
MENU_PAD_BYTES = 6_000


def _stores(server: OriginServer, request: Request, user: str) -> Response:
    region = request.uri.query_get("region", "sf")
    stores = [
        server.catalog.restaurant("doordash", store_id)
        for store_id in server.catalog.restaurant_ids("doordash", region)
    ]
    return server.json({"stores": stores})


def _menu(server: OriginServer, request: Request, user: str) -> Response:
    store_id = request._captures.get("sid", "")
    menu = server.catalog.menu("doordash", store_id)
    menu["disclaimer"] = filler("dd-menu-{}".format(store_id), MENU_PAD_BYTES)
    return server.json({"menu": menu})


def _schedule(server: OriginServer, request: Request, user: str) -> Response:
    store_id = request._captures.get("sid", "")
    return server.json({"schedule": server.catalog.schedule("doordash", store_id)})


def _menu_item(server: OriginServer, request: Request, user: str) -> Response:
    item_id = request.body.get("item_id", "") if request.body.kind == "form" else ""
    return server.json({"item": server.catalog.menu_item("doordash", item_id)})


def _options(server: OriginServer, request: Request, user: str) -> Response:
    group_id = request.uri.query_get("gid", "")
    return server.json(server.catalog.option_group("doordash", group_id))


def _suggestions(server: OriginServer, request: Request, user: str) -> Response:
    item_id = request.uri.query_get("menu_item_id", "")
    suggestions = [
        {"id": sid, "name": server.catalog.menu_item("doordash", sid)["name"]}
        for sid in server.catalog.suggestions("doordash", item_id)
    ]
    return server.json({"suggestions": suggestions})


def _store_image(server: OriginServer, request: Request, user: str) -> Response:
    store_id = request._captures.get("sid", "").split(".")[0]
    size = server.catalog.image_size(
        "doordash", "store-{}".format(store_id), STORE_IMAGE_BYTES
    )
    return Response(200, body=BlobBody("dd-store-{}".format(store_id), size))


def _offers(server: OriginServer, request: Request, user: str) -> Response:
    from repro.server.content import stable_id

    offers = [{"id": stable_id("doordash", "offer", i), "pct": 10 + i} for i in range(3)]
    return server.json({"offers": offers})


def _offer(server: OriginServer, request: Request, user: str) -> Response:
    oid = request.uri.query_get("oid", "")
    return server.json({"offer": {"id": oid, "terms": "weekday lunch only"}})


def build_doordash_api(sim: Simulator, catalog: Catalog) -> OriginServer:
    server = OriginServer(sim, "https://api.doordash.com", catalog)
    server.route("GET", "/v2/stores", _stores, service_time=0.35, name="stores")
    server.route("GET", "/v2/store/<sid>/menu", _menu, service_time=0.30, name="menu")
    server.route("GET", "/v2/store/<sid>/schedule", _schedule, service_time=0.15, name="schedule")
    server.route("POST", "/v2/menu-item", _menu_item, service_time=0.20, name="menu-item")
    server.route("GET", "/v2/options", _options, service_time=0.10, name="options")
    server.route("GET", "/v2/suggestions", _suggestions, service_time=0.15, name="suggestions")
    server.route("GET", "/store-img/<sid>", _store_image, service_time=0.006, name="store-img")
    server.route("GET", "/v2/offers", _offers, service_time=0.05, name="offers")
    server.route("GET", "/v2/offer", _offer, service_time=0.04, name="offer")
    return server
