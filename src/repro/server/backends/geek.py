"""Geek backend — Wish's sibling shopping app (same operator).

Same overall API shape as Wish with different endpoint names, plus a
wishlist endpoint (side-effecting).  Product images are the same
~315 KB class the paper calls out for both shopping apps.
"""

from __future__ import annotations

from repro.httpmsg.body import BlobBody
from repro.httpmsg.message import Request, Response
from repro.netsim.sim import Simulator
from repro.server.content import Catalog, filler
from repro.server.origin import OriginServer

FEED_COUNT = 30
THUMB_BYTES = 38_000
PRODUCT_IMAGE_BYTES = 315_000
DETAIL_PAD_BYTES = 9_000


def _feed(server: OriginServer, request: Request, user: str) -> Response:
    version = server.content_version()
    products = []
    for product_id in server.catalog.product_ids("geek", version, count=FEED_COUNT, user=user):
        product = server.catalog.product("geek", product_id)
        products.append(
            {
                "id": product["id"],
                "name": product["name"],
                "price": product["price"],
                "merchant_name": product["merchant_name"],
            }
        )
    return server.json({"feed": {"items": products, "version": version}})


def _product(server: OriginServer, request: Request, user: str) -> Response:
    pid = request.body.get("pid", "") if request.body.kind == "form" else ""
    product = server.catalog.product("geek", pid)
    return server.json(
        {
            "product": {
                "id": product["id"],
                "name": product["name"],
                "price": product["price"],
                "rating": product["rating"],
                "merchant_name": product["merchant_name"],
                "num_bought": product["num_bought"],
                "details": filler("geek-detail-{}".format(pid), DETAIL_PAD_BYTES),
            }
        }
    )


def _related(server: OriginServer, request: Request, user: str) -> Response:
    pid = request.body.get("pid", "") if request.body.kind == "form" else ""
    related = [
        {"id": rid, "price": server.catalog.product("geek", rid)["price"]}
        for rid in server.catalog.related_product_ids("geek", pid)
    ]
    return server.json({"related": related})


def _reviews(server: OriginServer, request: Request, user: str) -> Response:
    pid = request.uri.query_get("pid", "")
    ratings = server.catalog.merchant_ratings("geek", pid)
    return server.json({"reviews": ratings["recent"], "average": ratings["average"]})


def _wishlist_add(server: OriginServer, request: Request, user: str) -> Response:
    server.requests_by_route["wishlist-adds"] = (
        server.requests_by_route.get("wishlist-adds", 0) + 1
    )
    return server.json({"ok": True})


def _push_config(server: OriginServer, request: Request, user: str) -> Response:
    return server.json({"channel": "geek-deals-{}".format(user)})


def _push_subscribe(server: OriginServer, request: Request, user: str) -> Response:
    channel = request.uri.query_get("ch", "")
    return server.json({"subscribed": True, "channel": channel})


def build_geek_api(sim: Simulator, catalog: Catalog) -> OriginServer:
    server = OriginServer(sim, "https://api.geek.com", catalog)
    server.route("POST", "/api/feed", _feed, service_time=0.30, name="feed")
    server.route("POST", "/api/product", _product, service_time=0.35, name="product")
    server.route("POST", "/api/related", _related, service_time=0.20, name="related")
    server.route("GET", "/api/reviews", _reviews, service_time=0.20, name="reviews")
    server.route("POST", "/api/wishlist/add", _wishlist_add, service_time=0.03, name="wishlist-add")
    server.route("GET", "/api/push-config", _push_config, service_time=0.04, name="push-config")
    server.route("GET", "/api/push/subscribe", _push_subscribe, service_time=0.04, name="push-subscribe")
    return server


def _thumb(server: OriginServer, request: Request, user: str) -> Response:
    pid = request.uri.query_get("pid", "")
    size = server.catalog.image_size("geek", "thumb-{}".format(pid), THUMB_BYTES)
    return Response(200, body=BlobBody("geek-thumb-{}".format(pid), size))


def _product_image(server: OriginServer, request: Request, user: str) -> Response:
    pid = request.uri.query_get("pid", "")
    size = server.catalog.image_size("geek", "product-{}".format(pid), PRODUCT_IMAGE_BYTES)
    return Response(200, body=BlobBody("geek-product-{}".format(pid), size))


def build_geek_images(sim: Simulator, catalog: Catalog) -> OriginServer:
    server = OriginServer(sim, "https://img.geek.com", catalog)
    server.route("GET", "/t", _thumb, service_time=0.004, name="thumb")
    server.route("GET", "/p", _product_image, service_time=0.008, name="product-img")
    return server
