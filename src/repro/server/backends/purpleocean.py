"""Purple Ocean backend — psychic reading.

The API origin sits far away (230 ms RTT, the largest in Table 2); a
separate nearby media origin (15 ms) serves advisor profile images and
video still frames — the three transactions Table 2 lists for the main
interaction.
"""

from __future__ import annotations

from repro.httpmsg.body import BlobBody
from repro.httpmsg.message import Request, Response
from repro.netsim.sim import Simulator
from repro.server.content import Catalog, filler
from repro.server.origin import OriginServer

PROFILE_IMAGE_BYTES = 18_000
VIDEO_STILL_BYTES = 26_000
LIST_THUMB_BYTES = 9_000
ADVISOR_PAD_BYTES = 4_000


def _advisors(server: OriginServer, request: Request, user: str) -> Response:
    advisors = [
        {
            "id": advisor_id,
            "login": "mystic_{}".format(advisor_id),
            "name": server.catalog.advisor("purpleocean", advisor_id)["name"],
        }
        for advisor_id in server.catalog.advisor_ids("purpleocean")
    ]
    return server.json({"advisors": advisors})


def _advisor(server: OriginServer, request: Request, user: str) -> Response:
    advisor_id = request.uri.query_get("aid", "")
    advisor = server.catalog.advisor("purpleocean", advisor_id)
    advisor["bio"] = filler("po-bio-{}".format(advisor_id), ADVISOR_PAD_BYTES)
    return server.json({"advisor": advisor})


def _start_reading(server: OriginServer, request: Request, user: str) -> Response:
    server.requests_by_route["readings-started"] = (
        server.requests_by_route.get("readings-started", 0) + 1
    )
    advisor_id = request.body.get("aid", "") if request.body.kind == "form" else ""
    return server.json({"session": "rd-{}-{}".format(user, advisor_id), "ok": True})


def _horoscope(server: OriginServer, request: Request, user: str) -> Response:
    from repro.server.content import stable_id

    signs = ["aries", "leo", "virgo", "pisces", "gemini"]
    sign = signs[int(stable_id("po", "sign", user), 16) % len(signs)]
    return server.json({"sign": sign})


def _horoscope_detail(server: OriginServer, request: Request, user: str) -> Response:
    sign = request.uri.query_get("sign", "")
    return server.json({"sign": sign, "reading": filler("po-horo-{}".format(sign), 800)})


def build_purpleocean_api(sim: Simulator, catalog: Catalog) -> OriginServer:
    server = OriginServer(sim, "https://api.purpleocean.com", catalog)
    server.route("GET", "/api/advisors", _advisors, service_time=0.30, name="advisors")
    server.route("GET", "/api/advisor", _advisor, service_time=0.35, name="advisor")
    server.route(
        "POST", "/api/reading/start", _start_reading, service_time=0.05, name="reading-start"
    )
    server.route("GET", "/api/horoscope", _horoscope, service_time=0.05, name="horoscope")
    server.route(
        "GET", "/api/horoscope/detail", _horoscope_detail, service_time=0.05, name="horoscope-detail"
    )
    return server


def _profile_image(server: OriginServer, request: Request, user: str) -> Response:
    advisor_id = request._captures.get("aid", "").split(".")[0]
    size = server.catalog.image_size(
        "purpleocean", "profile-{}".format(advisor_id), PROFILE_IMAGE_BYTES
    )
    return Response(200, body=BlobBody("po-profile-{}".format(advisor_id), size))


def _video_still(server: OriginServer, request: Request, user: str) -> Response:
    advisor_id = request._captures.get("aid", "").split(".")[0]
    size = server.catalog.image_size(
        "purpleocean", "still-{}".format(advisor_id), VIDEO_STILL_BYTES
    )
    return Response(200, body=BlobBody("po-still-{}".format(advisor_id), size))


def _list_thumb(server: OriginServer, request: Request, user: str) -> Response:
    advisor_id = request.uri.query_get("aid", "")
    size = server.catalog.image_size(
        "purpleocean", "thumb-{}".format(advisor_id), LIST_THUMB_BYTES
    )
    return Response(200, body=BlobBody("po-thumb-{}".format(advisor_id), size))


def build_purpleocean_media(sim: Simulator, catalog: Catalog) -> OriginServer:
    server = OriginServer(sim, "https://media.purpleocean.com", catalog)
    server.route("GET", "/media/profile/<aid>", _profile_image, service_time=0.004, name="profile")
    server.route("GET", "/media/still/<aid>", _video_still, service_time=0.004, name="still")
    server.route("GET", "/media/thumb", _list_thumb, service_time=0.003, name="thumb")
    return server
