"""Postmates backend — food delivery with a nearby origin (5 ms RTT).

Table 2 gives Postmates the shortest origin RTT; the paper notes its
restaurant images are large (~168 KB) while the prefetched menu/info
responses are small (~7 KB), which is why its data-usage overhead is
only 8%.  The deep drill-down (feed → restaurant → item → options →
pairings) yields the longest dependency chains in Table 3.
"""

from __future__ import annotations

from repro.httpmsg.body import BlobBody
from repro.httpmsg.message import Request, Response
from repro.netsim.sim import Simulator
from repro.server.content import Catalog, filler
from repro.server.origin import OriginServer

RESTAURANT_IMAGE_BYTES = 168_000
MENU_PAD_BYTES = 5_000


def _feed(server: OriginServer, request: Request, user: str) -> Response:
    region = request.uri.query_get("market", "sf")
    restaurants = [
        server.catalog.restaurant("postmates", store_id)
        for store_id in server.catalog.restaurant_ids("postmates", region, count=8)
    ]
    return server.json({"feed": restaurants})


def _restaurant(server: OriginServer, request: Request, user: str) -> Response:
    store_id = request.uri.query_get("rid", "")
    info = server.catalog.restaurant("postmates", store_id)
    menu = server.catalog.menu("postmates", store_id)
    menu["notes"] = filler("pm-menu-{}".format(store_id), MENU_PAD_BYTES)
    return server.json({"info": info, "menu": menu})


def _eta(server: OriginServer, request: Request, user: str) -> Response:
    store_id = request.uri.query_get("rid", "")
    info = server.catalog.restaurant("postmates", store_id)
    return server.json(
        {"rid": store_id, "eta_minutes": info["eta_minutes"], "surge": False}
    )


def _item(server: OriginServer, request: Request, user: str) -> Response:
    item_id = request.uri.query_get("iid", "")
    return server.json({"item": server.catalog.menu_item("postmates", item_id)})


def _options(server: OriginServer, request: Request, user: str) -> Response:
    group_id = request.uri.query_get("gid", "")
    return server.json(server.catalog.option_group("postmates", group_id))


def _pairings(server: OriginServer, request: Request, user: str) -> Response:
    item_id = request.uri.query_get("iid", "")
    pairings = [
        {"id": sid, "name": server.catalog.menu_item("postmates", sid)["name"]}
        for sid in server.catalog.suggestions("postmates", item_id, count=4)
    ]
    return server.json({"pairings": pairings})


def _restaurant_image(server: OriginServer, request: Request, user: str) -> Response:
    store_id = request._captures.get("rid", "").split(".")[0]
    size = server.catalog.image_size(
        "postmates", "store-{}".format(store_id), RESTAURANT_IMAGE_BYTES
    )
    return Response(200, body=BlobBody("pm-store-{}".format(store_id), size))


def _promos(server: OriginServer, request: Request, user: str) -> Response:
    from repro.server.content import stable_id

    promos = [{"id": stable_id("postmates", "promo", i)} for i in range(2)]
    return server.json({"promos": promos})


def _promo(server: OriginServer, request: Request, user: str) -> Response:
    pid = request.uri.query_get("pid", "")
    return server.json({"promo": {"id": pid, "text": "free delivery"}})


def build_postmates_api(sim: Simulator, catalog: Catalog) -> OriginServer:
    server = OriginServer(sim, "https://api.postmates.com", catalog)
    server.route("GET", "/v1/feed", _feed, service_time=0.25, name="feed")
    server.route("GET", "/v1/restaurant", _restaurant, service_time=0.30, name="restaurant")
    server.route("GET", "/v1/eta", _eta, service_time=0.12, name="eta")
    server.route("GET", "/v1/item", _item, service_time=0.15, name="item")
    server.route("GET", "/v1/options", _options, service_time=0.10, name="options")
    server.route("GET", "/v1/pairings", _pairings, service_time=0.10, name="pairings")
    server.route(
        "GET", "/store-img/<rid>", _restaurant_image, service_time=0.006, name="store-img"
    )
    server.route("GET", "/v1/promos", _promos, service_time=0.04, name="promos")
    server.route("GET", "/v1/promo", _promo, service_time=0.03, name="promo")
    return server
