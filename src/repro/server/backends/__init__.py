"""Per-app origin-server backends."""

from repro.server.backends.wish import build_wish_api, build_wish_images
from repro.server.backends.geek import build_geek_api, build_geek_images
from repro.server.backends.doordash import build_doordash_api
from repro.server.backends.purpleocean import (
    build_purpleocean_api,
    build_purpleocean_media,
)
from repro.server.backends.postmates import build_postmates_api

__all__ = [
    "build_wish_api",
    "build_wish_images",
    "build_geek_api",
    "build_geek_images",
    "build_doordash_api",
    "build_purpleocean_api",
    "build_purpleocean_media",
    "build_postmates_api",
]
