"""Origin-server framework.

:class:`OriginServer` is a simulator :class:`~repro.netsim.Endpoint`
with route dispatch, per-route service times, session cookies, content
rotation (feeds change over virtual time, so long-lived prefetched
responses go stale), and fault injection used by the verification-phase
tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.httpmsg.body import JsonBody
from repro.httpmsg.cookies import parse_cookie_header
from repro.httpmsg.headers import Headers
from repro.httpmsg.message import Request, Response
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import Endpoint

#: route handler: (server, request, user) -> Response
Handler = Callable[["OriginServer", Request, str], Response]


class Route:
    """One routed endpoint: a path matcher plus a handler."""

    def __init__(
        self,
        method: str,
        path: str,
        handler: Handler,
        service_time: float = 0.03,
        name: str = "",
    ) -> None:
        self.method = method
        self.parts = [p for p in path.split("/") if p]
        self.handler = handler
        self.service_time = service_time
        self.name = name or path

    def match(self, request: Request) -> Optional[Dict[str, str]]:
        if request.method != self.method:
            return None
        segments = request.uri.path_segments()
        if len(segments) != len(self.parts):
            return None
        captures: Dict[str, str] = {}
        for pattern, segment in zip(self.parts, segments):
            if pattern.startswith("<") and pattern.endswith(">"):
                captures[pattern[1:-1]] = segment
            elif pattern != segment:
                return None
        return captures


class OriginServer(Endpoint):
    """A simulated origin with REST routes."""

    def __init__(self, sim: Simulator, origin: str, catalog=None) -> None:
        self.sim = sim
        self.origin = origin
        self.catalog = catalog
        self.routes: List[Route] = []
        self.request_count = 0
        self.requests_by_route: Dict[str, int] = {}
        #: fault injection: route name -> HTTP status to force
        self.forced_errors: Dict[str, int] = {}
        #: fault injection: route names that hang (never respond usefully)
        self.hanging_routes: set = set()
        self._session_counter = 0
        #: seconds after which rotating content (feeds) changes
        self.rotation_period: float = 3600.0
        #: captured (request, user) pairs, newest last (for tests)
        self.log: List[Tuple[Request, str]] = []
        self.max_log = 10_000

    # -- route registration ------------------------------------------------
    def route(
        self,
        method: str,
        path: str,
        handler: Handler,
        service_time: float = 0.03,
        name: str = "",
    ) -> None:
        self.routes.append(Route(method, path, handler, service_time, name))

    # -- fault injection -----------------------------------------------------
    def force_error(self, route_name: str, status: int = 500) -> None:
        self.forced_errors[route_name] = status

    def clear_faults(self) -> None:
        self.forced_errors.clear()
        self.hanging_routes.clear()

    def hang(self, route_name: str) -> None:
        self.hanging_routes.add(route_name)

    # -- content rotation -----------------------------------------------------
    def content_version(self) -> int:
        """Monotone counter; rotating content keys off it."""
        if self.rotation_period <= 0:
            return 0
        return int(self.sim.now // self.rotation_period)

    # -- Endpoint ----------------------------------------------------------------
    def handle(self, request: Request, user: str) -> Generator:
        self.request_count += 1
        if len(self.log) < self.max_log:
            self.log.append((request, user))
        for route in self.routes:
            captures = route.match(request)
            if captures is None:
                continue
            self.requests_by_route[route.name] = (
                self.requests_by_route.get(route.name, 0) + 1
            )
            if route.name in self.hanging_routes:
                yield Delay(30.0)  # long stall, then a gateway timeout
                return Response(504, body=JsonBody({"error": "timeout"}))
            yield Delay(route.service_time)
            if route.name in self.forced_errors:
                return self._error(self.forced_errors[route.name])
            request._captures = captures  # stashed for the handler
            response = route.handler(self, request, user)
            self._attach_session(request, response, user)
            return response
        yield Delay(0.005)
        return self._error(404)

    # -- helpers ----------------------------------------------------------------
    def _error(self, status: int) -> Response:
        return Response(status, body=JsonBody({"error": status}))

    def _attach_session(self, request: Request, response: Response, user: str) -> None:
        cookie_header = request.headers.get("Cookie", "")
        has_session = any(
            name == "bsid" for name, _ in parse_cookie_header(cookie_header or "")
        )
        if not has_session:
            # session ids are stable per (origin, user): re-issuing on a
            # cookie-less request (e.g. an image fetch) must not rotate
            # the session the client already holds
            from repro.server.content import stable_id

            self._session_counter += 1
            response.headers.add(
                "Set-Cookie",
                "bsid={}-{}".format(user, stable_id(self.origin, "session", user)),
            )

    @staticmethod
    def json(payload, headers: Optional[Headers] = None, status: int = 200) -> Response:
        return Response(status, headers=headers or Headers(), body=JsonBody(payload))
