"""Cookie parsing/formatting.

The proxy tracks per-user context (§2: "the proxy keeps track of user
contexts (e.g., cookie)"), and the device runtime maintains a cookie
jar that origin servers populate via ``Set-Cookie``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


def parse_cookie_header(value: str) -> List[Tuple[str, str]]:
    """Parse a ``Cookie:`` header into ordered (name, value) pairs."""
    pairs: List[Tuple[str, str]] = []
    for chunk in value.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, _, cookie_value = chunk.partition("=")
        pairs.append((name.strip(), cookie_value.strip()))
    return pairs


def format_cookie_header(pairs: List[Tuple[str, str]]) -> str:
    return "; ".join("{}={}".format(name, value) for name, value in pairs)


def parse_set_cookie(value: str) -> Tuple[str, str, Dict[str, str]]:
    """Parse a ``Set-Cookie:`` header into (name, value, attributes)."""
    chunks = [c.strip() for c in value.split(";") if c.strip()]
    if not chunks:
        raise ValueError("empty Set-Cookie header")
    name, _, cookie_value = chunks[0].partition("=")
    attributes: Dict[str, str] = {}
    for chunk in chunks[1:]:
        attr_name, _, attr_value = chunk.partition("=")
        attributes[attr_name.strip().lower()] = attr_value.strip()
    return name.strip(), cookie_value.strip(), attributes


class CookieJar:
    """Per-origin cookie storage used by the device runtime."""

    def __init__(self) -> None:
        self._jar: Dict[str, Dict[str, str]] = {}

    def store_from_response(self, origin: str, response) -> None:
        for header_value in response.headers.get_all("Set-Cookie"):
            name, value, _ = parse_set_cookie(header_value)
            self._jar.setdefault(origin, {})[name] = value

    def cookie_header(self, origin: str) -> str:
        cookies = self._jar.get(origin, {})
        return format_cookie_header(sorted(cookies.items()))

    def get(self, origin: str, name: str, default: str = "") -> str:
        return self._jar.get(origin, {}).get(name, default)

    def set(self, origin: str, name: str, value: str) -> None:
        self._jar.setdefault(origin, {})[name] = value

    def clear(self) -> None:
        self._jar.clear()
