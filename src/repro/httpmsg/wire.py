"""HTTP/1.1 wire-format serialization and parsing.

The simulator passes message *objects* between hosts, but signatures,
logs, and the verification phase all need a canonical textual form, and
round-tripping through it is a correctness check the property-based
tests rely on.
"""

from __future__ import annotations


from repro.httpmsg.body import (
    BlobBody,
    Body,
    EmptyBody,
    FormBody,
    JsonBody,
    TextBody,
)
from repro.httpmsg.headers import Headers
from repro.httpmsg.message import Request, Response
from repro.httpmsg.uri import Uri

_BLOB_PREFIX = "<blob "


def serialize_request(request: Request) -> str:
    """Render ``request`` as HTTP/1.1 text (blob bodies as placeholders)."""
    headers = request.headers.copy()
    _stamp_entity_headers(headers, request.body)
    headers.set("Host", _host_header(request.uri))
    lines = [
        "{} {} HTTP/1.1".format(request.method, request.uri.path_and_query()),
    ]
    lines.extend("{}: {}".format(n, v) for n, v in headers.items())
    lines.append("")
    lines.append(request.body.to_wire())
    return "\r\n".join(lines)


def serialize_response(response: Response) -> str:
    headers = response.headers.copy()
    _stamp_entity_headers(headers, response.body)
    lines = ["HTTP/1.1 {} {}".format(response.status, _reason(response.status))]
    lines.extend("{}: {}".format(n, v) for n, v in headers.items())
    lines.append("")
    lines.append(response.body.to_wire())
    return "\r\n".join(lines)


def parse_request(text: str, scheme: str = "https") -> Request:
    """Parse HTTP/1.1 request text produced by :func:`serialize_request`."""
    head, _, body_text = text.partition("\r\n\r\n")
    lines = head.split("\r\n")
    method, _, rest = lines[0].partition(" ")
    target, _, _version = rest.rpartition(" ")
    headers = _parse_headers(lines[1:])
    host = headers.get("Host", "")
    port = None
    if ":" in host:
        host, _, port_text = host.partition(":")
        port = int(port_text)
    uri = Uri.parse("{}://{}{}".format(scheme, host, target or "/"))
    uri.port = port
    body = _parse_body(headers, body_text)
    headers.remove("Host")
    headers.remove("Content-Type")
    headers.remove("Content-Length")
    return Request(method=method, uri=uri, headers=headers, body=body)


def parse_response(text: str) -> Response:
    head, _, body_text = text.partition("\r\n\r\n")
    lines = head.split("\r\n")
    parts = lines[0].split(" ", 2)
    status = int(parts[1])
    headers = _parse_headers(lines[1:])
    body = _parse_body(headers, body_text)
    headers.remove("Content-Type")
    headers.remove("Content-Length")
    return Response(status=status, headers=headers, body=body)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _host_header(uri: Uri) -> str:
    if uri.port is not None:
        return "{}:{}".format(uri.host, uri.port)
    return uri.host


def _stamp_entity_headers(headers: Headers, body: Body) -> None:
    content_type = body.content_type()
    if content_type and "Content-Type" not in headers:
        headers.set("Content-Type", content_type)
    if not isinstance(body, EmptyBody):
        headers.set("Content-Length", str(body.wire_size()))


def _parse_headers(lines) -> Headers:
    headers = Headers()
    for line in lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers.add(name.strip(), value.strip())
    return headers


def _parse_body(headers: Headers, body_text: str) -> Body:
    content_type = headers.get("Content-Type", "")
    if not body_text:
        # an empty form body is still a form body (Content-Type says so)
        if content_type.startswith("application/x-www-form-urlencoded"):
            return FormBody()
        return EmptyBody()
    if body_text.startswith(_BLOB_PREFIX) and body_text.endswith(" bytes>"):
        inner = body_text[len(_BLOB_PREFIX) : -len(" bytes>")]
        label, _, size_text = inner.rpartition(" ")
        return BlobBody(label, int(size_text), content_type or "image/jpeg")
    if content_type.startswith("application/json"):
        return JsonBody.parse(body_text)
    if content_type.startswith("application/x-www-form-urlencoded"):
        return FormBody.parse(body_text)
    return TextBody(body_text)


_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    301: "Moved Permanently",
    302: "Found",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _reason(status: int) -> str:
    return _REASONS.get(status, "Unknown")
