"""Field paths: addressing parts of an HTTP message.

Signatures and dependency edges produced by the static analyzer refer to
message fields by path, e.g.::

    header.Cookie
    query.cid
    body.cid                          (form field)
    body.data.products[].product_info.id   (json, [] = every element)
    uri.host
    uri.path[1]                       (second path segment)
    status

The dynamic-learning engine uses :func:`FieldPath.extract` to pull
values out of observed transactions and :func:`FieldPath.assign` to fill
them into prefetch request instances.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple, Union

from repro.httpmsg.body import BlobBody, FormBody, JsonBody

#: A path part: a string key, an integer index, or the marker "[]"
PathPart = Union[str, int]

_ROOTS = ("method", "uri", "query", "header", "body", "status")

ALL = "[]"


class FieldPath:
    """Immutable path into a request or response.

    ``occurrence`` selects the n-th value when a header, query key, or
    form key repeats (Wish sends several ``_cap[]`` form fields; each
    is a distinct signature field).  Rendered as a ``~n`` suffix.
    """

    __slots__ = ("root", "parts", "occurrence")

    def __init__(
        self, root: str, parts: Sequence[PathPart] = (), occurrence: int = 0
    ) -> None:
        if root not in _ROOTS:
            raise ValueError("unknown field-path root: {!r}".format(root))
        self.root = root
        self.parts: Tuple[PathPart, ...] = tuple(parts)
        self.occurrence = occurrence

    # ------------------------------------------------------------------
    # parsing / formatting
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FieldPath":
        """Parse the dotted textual form, e.g. ``body.items[].id``."""
        occurrence = 0
        if "~" in text:
            text, _, occurrence_text = text.rpartition("~")
            occurrence = int(occurrence_text)
        pieces = text.split(".")
        root = pieces[0]
        parts: List[PathPart] = []
        for piece in pieces[1:]:
            suffixes: List[PathPart] = []
            while True:
                if piece.endswith("[]"):
                    suffixes.append(ALL)
                    piece = piece[:-2]
                elif piece.endswith("]") and "[" in piece:
                    name, _, index_text = piece[:-1].rpartition("[")
                    suffixes.append(int(index_text))
                    piece = name
                else:
                    break
            if piece:
                parts.append(_unescape_key(piece))
            parts.extend(reversed(suffixes))
        return cls(root, parts, occurrence)

    def to_string(self) -> str:
        out = [self.root]
        for part in self.parts:
            if part == ALL:
                if out:
                    out[-1] = out[-1] + "[]"
                else:  # pragma: no cover - root always present
                    out.append("[]")
            elif isinstance(part, int):
                out[-1] = out[-1] + "[{}]".format(part)
            else:
                out.append(_escape_key(str(part)))
        text = ".".join(out)
        if self.occurrence:
            text += "~{}".format(self.occurrence)
        return text

    # ------------------------------------------------------------------
    # message access
    # ------------------------------------------------------------------
    def extract(self, message: Any) -> List[Any]:
        """Values at this path inside ``message`` (possibly many).

        ``message`` is duck-typed: a Request (``method``, ``uri``,
        ``headers``, ``body``) or Response (``status``, ``headers``,
        ``body``).
        """
        if self.root == "method":
            return [message.method]
        if self.root == "status":
            return [message.status]
        if self.root == "header":
            name = str(self.parts[0])
            return self._pick(list(message.headers.get_all(name)))
        if self.root == "query":
            key = str(self.parts[0])
            return self._pick([v for n, v in message.uri.query if n == key])
        if self.root == "uri":
            return self._extract_uri(message.uri)
        if self.root == "body":
            return self._extract_body(message.body)
        raise AssertionError("unreachable root {!r}".format(self.root))

    def _extract_uri(self, uri: Any) -> List[Any]:
        if not self.parts:
            return [uri.to_string()]
        head = self.parts[0]
        if head == "host":
            return [uri.host]
        if head == "scheme":
            return [uri.scheme]
        if head == "origin":
            return [uri.origin()]
        if head == "path":
            segments = uri.path_segments()
            if len(self.parts) == 1:
                return [uri.path]
            index = self.parts[1]
            if isinstance(index, int) and 0 <= index < len(segments):
                return [segments[index]]
            return []
        return []

    def _extract_body(self, body: Any) -> List[Any]:
        if isinstance(body, FormBody):
            if not self.parts:
                return [body.to_wire()]
            key = str(self.parts[0])
            return self._pick(body.get_all(key))
        if isinstance(body, JsonBody):
            return _json_walk(body.value, self.parts)
        if isinstance(body, BlobBody):
            return [body.label] if not self.parts else []
        return []

    def assign(self, message: Any, value: Any) -> bool:
        """Set the field at this path in ``message`` to ``value``.

        Returns ``True`` when the assignment landed.  ``[]`` parts are
        not assignable (instances are replicated per element instead —
        §4.2 of the paper).
        """
        if ALL in self.parts:
            raise ValueError("cannot assign through []: {}".format(self.to_string()))
        if self.root == "method":
            message.method = str(value)
            return True
        if self.root == "header":
            name = str(self.parts[0])
            values = message.headers.get_all(name)
            if self.occurrence < len(values):
                values[self.occurrence] = str(value)
            else:
                values.append(str(value))
            message.headers.remove(name)
            for item in values:
                message.headers.add(name, item)
            return True
        if self.root == "query":
            key = str(self.parts[0])
            landed = _set_nth(message.uri.query, key, self.occurrence, str(value))
            if landed:
                message.uri.touch()  # in-place list write; bump exact_key stamp
            return landed
        if self.root == "uri":
            landed = self._assign_uri(message.uri, value)
            if landed:
                message.uri.touch()
            return landed
        if self.root == "body":
            landed = self._assign_body(message, value)
            if landed:
                message.body.touch()  # covers nested JSON writes too
            return landed
        return False

    def _assign_uri(self, uri: Any, value: Any) -> bool:
        if not self.parts:
            parsed = type(uri).parse(str(value))
            uri.scheme = parsed.scheme
            uri.host = parsed.host
            uri.port = parsed.port
            uri.path = parsed.path
            uri.query = parsed.query
            return True
        head = self.parts[0]
        if head == "host":
            uri.host = str(value)
            return True
        if head == "scheme":
            uri.scheme = str(value)
            return True
        if head == "origin":
            scheme, _, host = str(value).partition("://")
            uri.scheme = scheme
            host_only, colon, port = host.partition(":")
            uri.host = host_only
            uri.port = int(port) if colon else None
            return True
        if head == "path":
            if len(self.parts) == 1:
                uri.path = str(value)
                return True
            index = self.parts[1]
            segments = uri.path_segments()
            if isinstance(index, int) and 0 <= index < len(segments):
                segments[index] = str(value)
                uri.path = "/" + "/".join(segments)
                return True
        return False

    def _assign_body(self, message: Any, value: Any) -> bool:
        body = message.body
        if isinstance(body, FormBody):
            if not self.parts:
                return False
            key = str(self.parts[0])
            return _set_nth(body.fields, key, self.occurrence, str(value))
        if isinstance(body, JsonBody):
            return _json_set(body.value, self.parts, value)
        return False

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def child(self, part: PathPart) -> "FieldPath":
        return FieldPath(self.root, self.parts + (part,), self.occurrence)

    def _pick(self, values: List[Any]) -> List[Any]:
        """Select by occurrence when one was requested."""
        if self.occurrence == 0 and len(values) <= 1:
            return values
        if self.occurrence < len(values):
            return [values[self.occurrence]]
        return []

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FieldPath):
            return NotImplemented
        return (self.root, self.parts, self.occurrence) == (
            other.root,
            other.parts,
            other.occurrence,
        )

    def __hash__(self) -> int:
        return hash((self.root, self.parts, self.occurrence))

    def __repr__(self) -> str:
        return "FieldPath({!r})".format(self.to_string())


#: characters with structural meaning in the textual path form; literal
#: occurrences inside keys (e.g. the form key ``_cap[]``) are escaped
_KEY_ESCAPES = [("%", "%25"), (".", "%2E"), ("[", "%5B"), ("]", "%5D"), ("~", "%7E")]


def _escape_key(key: str) -> str:
    for char, escaped in _KEY_ESCAPES:
        key = key.replace(char, escaped)
    return key


def _unescape_key(key: str) -> str:
    for char, escaped in reversed(_KEY_ESCAPES):
        key = key.replace(escaped, char)
    return key


def _set_nth(pairs: List[Tuple[str, str]], key: str, occurrence: int, value: str) -> bool:
    """Set the n-th pair with ``key`` in an ordered pair list (in place).

    Appends when fewer than ``occurrence + 1`` occurrences exist.
    """
    seen = 0
    for index, (name, _) in enumerate(pairs):
        if name == key:
            if seen == occurrence:
                pairs[index] = (key, value)
                return True
            seen += 1
    pairs.append((key, value))
    return True


def _json_walk(value: Any, parts: Sequence[PathPart]) -> List[Any]:
    """All values reached by following ``parts`` through a JSON value."""
    current: List[Any] = [value]
    for part in parts:
        next_values: List[Any] = []
        for node in current:
            if part == ALL:
                if isinstance(node, list):
                    next_values.extend(node)
            elif isinstance(part, int):
                if isinstance(node, list) and 0 <= part < len(node):
                    next_values.append(node[part])
            else:
                if isinstance(node, dict) and part in node:
                    next_values.append(node[part])
        current = next_values
        if not current:
            return []
    return current


def _json_set(value: Any, parts: Sequence[PathPart], new_value: Any) -> bool:
    """Set a single (non-``[]``) path inside a JSON value in place."""
    if not parts:
        return False
    node = value
    for part in parts[:-1]:
        if isinstance(part, int):
            if not isinstance(node, list) or not 0 <= part < len(node):
                return False
            node = node[part]
        else:
            if not isinstance(node, dict):
                return False
            node = node.setdefault(str(part), {})
    last = parts[-1]
    if isinstance(last, int):
        if isinstance(node, list) and 0 <= last < len(node):
            node[last] = new_value
            return True
        return False
    if isinstance(node, dict):
        node[str(last)] = new_value
        return True
    return False
