"""URI parsing and formatting.

A tiny, deterministic URI implementation: scheme, host, optional port,
path segments, and an order-preserving query string.  The proxy's
signature matching operates on the string form produced by
:meth:`Uri.to_string`, so formatting must be canonical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

_DEFAULT_PORTS = {"http": 80, "https": 443}

_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.~")


def quote(text: str) -> str:
    """Percent-encode ``text`` for use in a query component."""
    out = []
    for ch in str(text):
        if ch in _SAFE:
            out.append(ch)
        else:
            out.extend("%{:02X}".format(b) for b in ch.encode("utf-8"))
    return "".join(out)


def unquote(text: str) -> str:
    """Decode percent-encoding; tolerant of stray ``%``."""
    out = bytearray()
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "%" and i + 2 < len(text) + 1:
            hexpart = text[i + 1 : i + 3]
            try:
                out.append(int(hexpart, 16))
                i += 3
                continue
            except ValueError:
                pass
        out.extend(ch.encode("utf-8"))
        i += 1
    return out.decode("utf-8", errors="replace")


class Uri:
    """Structured URI with canonical string form.

    ``_version`` is the mutation counter :meth:`Request.exact_key`
    stamps its memo with.  In-place mutators (:meth:`query_set`, plus
    the :meth:`FieldPath.assign` write paths, which poke attributes and
    the query list directly) bump it via :meth:`touch`.
    """

    #: mutation counter for exact_key memoization
    _version = 0

    def __init__(
        self,
        scheme: str = "https",
        host: str = "",
        path: str = "/",
        query: Optional[List[Tuple[str, str]]] = None,
        port: Optional[int] = None,
    ) -> None:
        self.scheme = scheme
        self.host = host
        self.port = port
        self.path = path if path.startswith("/") else "/" + path
        self.query: List[Tuple[str, str]] = list(query or [])

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Uri":
        """Parse ``scheme://host[:port]/path?query`` into a :class:`Uri`."""
        scheme, sep, rest = text.partition("://")
        if not sep:
            raise ValueError("URI missing scheme: {!r}".format(text))
        authority, slash, tail = rest.partition("/")
        path_and_query = slash + tail if slash else "/"
        host, colon, port_text = authority.partition(":")
        port = int(port_text) if colon else None
        path, qmark, query_text = path_and_query.partition("?")
        query: List[Tuple[str, str]] = []
        if qmark and query_text:
            for pair in query_text.split("&"):
                key, _, value = pair.partition("=")
                query.append((unquote(key), unquote(value)))
        return cls(scheme=scheme, host=host, path=path or "/", query=query, port=port)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def effective_port(self) -> int:
        if self.port is not None:
            return self.port
        return _DEFAULT_PORTS.get(self.scheme, 80)

    def path_segments(self) -> List[str]:
        return [seg for seg in self.path.split("/") if seg]

    def query_get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        for name, value in self.query:
            if name == key:
                return value
        return default

    def query_set(self, key: str, value: str) -> None:
        self._version += 1
        for i, (name, _) in enumerate(self.query):
            if name == key:
                self.query[i] = (key, str(value))
                return
        self.query.append((key, str(value)))

    def touch(self) -> None:
        """Record an out-of-band mutation (direct attribute writes)."""
        self._version += 1

    def query_dict(self) -> Dict[str, str]:
        return {name: value for name, value in self.query}

    # ------------------------------------------------------------------
    # formatting
    # ------------------------------------------------------------------
    def origin(self) -> str:
        """``scheme://host[:port]`` — identifies the server endpoint."""
        if self.port is not None and self.port != _DEFAULT_PORTS.get(self.scheme):
            return "{}://{}:{}".format(self.scheme, self.host, self.port)
        return "{}://{}".format(self.scheme, self.host)

    def path_and_query(self) -> str:
        if not self.query:
            return self.path
        encoded = "&".join(
            "{}={}".format(quote(name), quote(value)) for name, value in self.query
        )
        return "{}?{}".format(self.path, encoded)

    def to_string(self) -> str:
        return self.origin() + self.path_and_query()

    def copy(self) -> "Uri":
        return Uri(self.scheme, self.host, self.path, list(self.query), self.port)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Uri):
            return NotImplemented
        return self.to_string() == other.to_string()

    def __hash__(self) -> int:
        return hash(self.to_string())

    def __repr__(self) -> str:
        return "Uri({!r})".format(self.to_string())
