"""HTTP message substrate.

Everything in the framework — app runtime, origin servers, and the
acceleration proxy — exchanges :class:`Request`/:class:`Response`
objects built from the primitives in this package.  The proxy's dynamic
learning addresses parts of a message through :class:`FieldPath`
values such as ``body.data.products[].product_info.id``.
"""

from repro.httpmsg.headers import Headers
from repro.httpmsg.uri import Uri
from repro.httpmsg.body import Body, FormBody, JsonBody, BlobBody, TextBody, EmptyBody
from repro.httpmsg.message import Request, Response, Transaction
from repro.httpmsg.fieldpath import FieldPath, PathPart
from repro.httpmsg.cookies import (
    CookieJar,
    format_cookie_header,
    parse_cookie_header,
    parse_set_cookie,
)

__all__ = [
    "Headers",
    "Uri",
    "Body",
    "FormBody",
    "JsonBody",
    "BlobBody",
    "TextBody",
    "EmptyBody",
    "Request",
    "Response",
    "Transaction",
    "FieldPath",
    "PathPart",
    "CookieJar",
    "parse_cookie_header",
    "format_cookie_header",
    "parse_set_cookie",
]
