"""Case-insensitive, order-preserving HTTP header collection."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class Headers:
    """HTTP headers: case-insensitive lookup, insertion order preserved.

    Multiple values for the same header name are supported (needed for
    ``Set-Cookie`` and for APPx's ``add_header`` configuration policy).
    """

    #: mutation counter; :meth:`Request.exact_key` stamps its memo with
    #: it, so every mutator must bump it
    _version = 0

    def __init__(self, items: Optional[List[Tuple[str, str]]] = None) -> None:
        self._items: List[Tuple[str, str]] = []
        self._index: Dict[str, List[int]] = {}
        if items:
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a header, keeping any existing values for ``name``.

        Values are canonicalized like HTTP does: optional whitespace
        around the field value is not significant and is stripped.
        """
        self._index.setdefault(name.lower(), []).append(len(self._items))
        self._items.append((name, str(value).strip()))
        self._version += 1

    def set(self, name: str, value: str) -> None:
        """Replace all values of ``name`` with a single ``value``."""
        self.remove(name)
        self.add(name, value)

    def remove(self, name: str) -> None:
        key = name.lower()
        if key not in self._index:
            return
        drop = set(self._index.pop(key))
        kept = [item for i, item in enumerate(self._items) if i not in drop]
        self._items = []
        self._index = {}
        for item_name, item_value in kept:
            self.add(item_name, item_value)
        self._version += 1

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the first value of ``name``, or ``default``."""
        positions = self._index.get(name.lower())
        if not positions:
            return default
        return self._items[positions[0]][1]

    def get_all(self, name: str) -> List[str]:
        positions = self._index.get(name.lower(), [])
        return [self._items[i][1] for i in positions]

    def names(self) -> List[str]:
        """Header names in first-appearance order (original casing)."""
        seen = set()
        ordered = []
        for name, _ in self._items:
            key = name.lower()
            if key not in seen:
                seen.add(key)
                ordered.append(name)
        return ordered

    def items(self) -> List[Tuple[str, str]]:
        return list(self._items)

    def copy(self) -> "Headers":
        return Headers(self._items)

    def wire_size(self) -> int:
        """Bytes this header block occupies on the wire."""
        return sum(len(n) + len(v) + 4 for n, v in self._items)  # "N: V\r\n"

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._index

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        mine = sorted((n.lower(), v) for n, v in self._items)
        theirs = sorted((n.lower(), v) for n, v in other._items)
        return mine == theirs

    def __repr__(self) -> str:
        return "Headers({!r})".format(self._items)
