"""HTTP request/response/transaction objects."""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.httpmsg.body import Body, EmptyBody
from repro.httpmsg.headers import Headers
from repro.httpmsg.uri import Uri

_REQUEST_LINE_OVERHEAD = 12  # method + spaces + "HTTP/1.1\r\n" padding
_STATUS_LINE_OVERHEAD = 17  # "HTTP/1.1 200 OK\r\n"


class Request:
    """An HTTP request.

    Equality covers method, URI (canonical string), headers, and body —
    exactly the check the proxy performs before serving a prefetched
    response in place of the origin server (§4.5: "the proxy sends the
    response only when the prefetch request is identical to the
    client's request").

    :meth:`exact_key` is memoized on the instance: the proxy computes
    it on every prefetch submit, duplicate check, cache probe, and
    in-flight discard, almost always on a request that has not changed
    since the last call.  The cache is stamped with the component
    mutation counters (``Headers._version`` / ``Uri._version`` /
    ``Body._version``) plus the method string, so any mutation through
    the component mutators — or through :meth:`FieldPath.assign`, which
    bumps the counters for its in-place writes — recomputes the key.
    """

    #: memoized (stamp, digest) pair from the last exact_key() call
    _key_cache = None

    def __init__(
        self,
        method: str = "GET",
        uri: Optional[Uri] = None,
        headers: Optional[Headers] = None,
        body: Optional[Body] = None,
    ) -> None:
        self.method = method
        self.uri = uri if uri is not None else Uri()
        self.headers = headers if headers is not None else Headers()
        self.body = body if body is not None else EmptyBody()

    def copy(self) -> "Request":
        return Request(
            self.method, self.uri.copy(), self.headers.copy(), self.body.copy()
        )

    def wire_size(self) -> int:
        return (
            _REQUEST_LINE_OVERHEAD
            + len(self.method)
            + len(self.uri.path_and_query())
            + self.headers.wire_size()
            + 2
            + self.body.wire_size()
        )

    def exact_key(self) -> str:
        """Stable digest of the full request — the prefetch-cache key."""
        stamp = (
            self.method,
            self.headers._version,
            self.uri._version,
            self.body._version,
        )
        cached = self._key_cache
        if cached is not None and cached[0] == stamp:
            return cached[1]
        hasher = hashlib.sha256()
        hasher.update(self.method.encode())
        hasher.update(b"\0")
        hasher.update(self.uri.to_string().encode())
        hasher.update(b"\0")
        for name in sorted(n.lower() for n in self.headers.names()):
            for value in self.headers.get_all(name):
                hasher.update("{}:{}".format(name, value).encode())
                hasher.update(b"\0")
        # body *kind* disambiguates equal wire text across body types
        # (an empty form and no body both serialize to ""; on the real
        # wire they differ by Content-Type), keeping the digest
        # injective with respect to request equality
        hasher.update(self.body.kind.encode())
        hasher.update(b"\0")
        hasher.update(self.body.to_wire().encode())
        key = hasher.hexdigest()
        self._key_cache = (stamp, key)
        return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Request):
            return NotImplemented
        return (
            self.method == other.method
            and self.uri == other.uri
            and self.headers == other.headers
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return hash(self.exact_key())

    def __repr__(self) -> str:
        return "Request({} {})".format(self.method, self.uri.to_string())


class Response:
    """An HTTP response."""

    def __init__(
        self,
        status: int = 200,
        headers: Optional[Headers] = None,
        body: Optional[Body] = None,
    ) -> None:
        self.status = int(status)
        self.headers = headers if headers is not None else Headers()
        self.body = body if body is not None else EmptyBody()

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def copy(self) -> "Response":
        return Response(self.status, self.headers.copy(), self.body.copy())

    def wire_size(self) -> int:
        return (
            _STATUS_LINE_OVERHEAD
            + self.headers.wire_size()
            + 2
            + self.body.wire_size()
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Response):
            return NotImplemented
        return (
            self.status == other.status
            and self.headers == other.headers
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return hash((self.status, self.body.to_wire()))

    def __repr__(self) -> str:
        return "Response({})".format(self.status)


class Transaction:
    """A request/response pair — the paper's unit of dependency."""

    def __init__(
        self,
        request: Request,
        response: Response,
        started_at: float = 0.0,
        finished_at: float = 0.0,
        user: Optional[str] = None,
        prefetched: bool = False,
    ) -> None:
        self.request = request
        self.response = response
        self.started_at = started_at
        self.finished_at = finished_at
        self.user = user
        self.prefetched = prefetched

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at

    def __repr__(self) -> str:
        return "Transaction({} {} -> {})".format(
            self.request.method, self.request.uri.to_string(), self.response.status
        )
