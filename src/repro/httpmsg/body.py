"""HTTP message bodies.

Four concrete kinds cover everything the evaluated apps exchange:

* :class:`FormBody` — ``application/x-www-form-urlencoded`` key/value
  pairs, order-preserving and supporting repeated keys (Wish uses
  repeated ``_cap[]`` fields in its request bodies).
* :class:`JsonBody` — a JSON document (the dominant response format).
* :class:`BlobBody` — opaque binary content (images).  Content is
  modelled as a label plus a byte size; the simulator only needs the
  size, and equality uses the label.
* :class:`TextBody` / :class:`EmptyBody` — plain text and absent bodies.
"""

from __future__ import annotations

import json as _json
from typing import Any, List, Optional, Tuple

from repro.httpmsg.uri import quote, unquote


class Body:
    """Abstract message body."""

    kind = "abstract"

    #: mutation counter; :meth:`Request.exact_key` stamps its memo with
    #: it.  Immutable bodies never bump it (the class attribute stays
    #: 0); mutators call :meth:`touch` or ``self._version += 1``.
    _version = 0

    def touch(self) -> None:
        """Record an in-place mutation (e.g. nested JSON writes)."""
        self._version += 1

    def wire_size(self) -> int:
        raise NotImplementedError

    def content_type(self) -> Optional[str]:
        raise NotImplementedError

    def copy(self) -> "Body":
        raise NotImplementedError

    def to_wire(self) -> str:
        """Canonical textual form (blobs render as a placeholder)."""
        raise NotImplementedError


class EmptyBody(Body):
    kind = "empty"

    def wire_size(self) -> int:
        return 0

    def content_type(self) -> Optional[str]:
        return None

    def copy(self) -> "EmptyBody":
        return EmptyBody()

    def to_wire(self) -> str:
        return ""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EmptyBody)

    def __hash__(self) -> int:
        return hash("empty-body")

    def __repr__(self) -> str:
        return "EmptyBody()"


class FormBody(Body):
    """Order-preserving form-encoded body with repeated-key support."""

    kind = "form"

    def __init__(self, fields: Optional[List[Tuple[str, str]]] = None) -> None:
        self.fields: List[Tuple[str, str]] = [
            (str(k), str(v)) for k, v in (fields or [])
        ]

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def get_all(self, key: str) -> List[str]:
        return [value for name, value in self.fields if name == key]

    def set(self, key: str, value: str) -> None:
        """Replace the first occurrence of ``key`` (append if absent)."""
        self._version += 1
        for i, (name, _) in enumerate(self.fields):
            if name == key:
                self.fields[i] = (key, str(value))
                return
        self.fields.append((key, str(value)))

    def add(self, key: str, value: str) -> None:
        self.fields.append((str(key), str(value)))
        self._version += 1

    def remove(self, key: str) -> None:
        self.fields = [(n, v) for n, v in self.fields if n != key]
        self._version += 1

    def keys(self) -> List[str]:
        seen = set()
        ordered = []
        for name, _ in self.fields:
            if name not in seen:
                seen.add(name)
                ordered.append(name)
        return ordered

    def wire_size(self) -> int:
        return len(self.to_wire().encode("utf-8"))

    def content_type(self) -> Optional[str]:
        return "application/x-www-form-urlencoded"

    def to_wire(self) -> str:
        return "&".join(
            "{}={}".format(quote(name), quote(value)) for name, value in self.fields
        )

    @classmethod
    def parse(cls, text: str) -> "FormBody":
        fields: List[Tuple[str, str]] = []
        if text:
            for pair in text.split("&"):
                key, _, value = pair.partition("=")
                fields.append((unquote(key), unquote(value)))
        return cls(fields)

    def copy(self) -> "FormBody":
        return FormBody(list(self.fields))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FormBody):
            return NotImplemented
        return self.fields == other.fields

    def __hash__(self) -> int:
        return hash(tuple(self.fields))

    def __repr__(self) -> str:
        return "FormBody({!r})".format(self.fields)


class JsonBody(Body):
    """A JSON document body."""

    kind = "json"

    def __init__(self, value: Any) -> None:
        self.value = value

    def wire_size(self) -> int:
        return len(self.to_wire().encode("utf-8"))

    def content_type(self) -> Optional[str]:
        return "application/json"

    def to_wire(self) -> str:
        return _json.dumps(self.value, sort_keys=True, separators=(",", ":"))

    @classmethod
    def parse(cls, text: str) -> "JsonBody":
        return cls(_json.loads(text))

    def copy(self) -> "JsonBody":
        return JsonBody(_json.loads(self.to_wire()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JsonBody):
            return NotImplemented
        return self.to_wire() == other.to_wire()

    def __hash__(self) -> int:
        return hash(self.to_wire())

    def __repr__(self) -> str:
        return "JsonBody({!r})".format(self.value)


class TextBody(Body):
    kind = "text"

    def __init__(self, text: str) -> None:
        self.text = str(text)

    def wire_size(self) -> int:
        return len(self.text.encode("utf-8"))

    def content_type(self) -> Optional[str]:
        return "text/plain"

    def to_wire(self) -> str:
        return self.text

    def copy(self) -> "TextBody":
        return TextBody(self.text)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TextBody):
            return NotImplemented
        return self.text == other.text

    def __hash__(self) -> int:
        return hash(("text-body", self.text))

    def __repr__(self) -> str:
        return "TextBody({!r})".format(self.text)


class BlobBody(Body):
    """Opaque binary content, modelled as label + size.

    Images dominate the byte counts in the paper's evaluation (Wish
    product images average ~315 KB, Postmates restaurant images
    ~168 KB); only their sizes matter to the simulator.
    """

    kind = "blob"

    def __init__(self, label: str, size: int, media_type: str = "image/jpeg") -> None:
        if size < 0:
            raise ValueError("blob size must be non-negative")
        self.label = label
        self.size = int(size)
        self.media_type = media_type

    def wire_size(self) -> int:
        return self.size

    def content_type(self) -> Optional[str]:
        return self.media_type

    def to_wire(self) -> str:
        return "<blob {} {} bytes>".format(self.label, self.size)

    def copy(self) -> "BlobBody":
        return BlobBody(self.label, self.size, self.media_type)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BlobBody):
            return NotImplemented
        return (self.label, self.size, self.media_type) == (
            other.label,
            other.size,
            other.media_type,
        )

    def __hash__(self) -> int:
        return hash((self.label, self.size, self.media_type))

    def __repr__(self) -> str:
        return "BlobBody({!r}, size={})".format(self.label, self.size)
