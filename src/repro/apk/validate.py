"""Static well-formedness checks for APK programs.

Run before analysis/execution so that mistakes in hand-written app
programs fail loudly at build time instead of mysteriously mid-run.
"""

from __future__ import annotations

from typing import List, Set

from repro.apk.api import is_known, spec_for
from repro.apk.ir import (
    Block,
    CallMethod,
    Const,
    ForEach,
    If,
    Invoke,
    MethodRef,
)
from repro.apk.program import ApkFile, Method

#: APIs whose final argument must be a const method-reference string.
_FUNCREF_APIS = {"Rx.defer", "Rx.map", "Rx.flatMap", "Rx.subscribe", "Rx.zip"}


class ValidationError(Exception):
    """The app program is malformed; message lists every finding."""

    def __init__(self, findings: List[str]) -> None:
        super().__init__("\n".join(findings))
        self.findings = findings


def validate_apk(apk: ApkFile) -> None:
    findings: List[str] = []
    for method in apk.all_methods():
        findings.extend(_check_method(apk, method))
    for component in apk.components.values():
        if component.class_name not in apk.classes:
            findings.append(
                "component {} references missing class {}".format(
                    component.name, component.class_name
                )
            )
        else:
            try:
                apk.resolve(component.start_ref)
            except KeyError:
                findings.append(
                    "component {} missing lifecycle method {}".format(
                        component.name, component.start_ref.to_string()
                    )
                )
        if component.screen is not None and component.screen not in apk.screens:
            findings.append(
                "component {} references missing screen {}".format(
                    component.name, component.screen
                )
            )
    for screen in apk.screens.values():
        for event in screen.events.values():
            try:
                apk.resolve(event.handler)
            except KeyError:
                findings.append(
                    "screen {} event {} references missing handler {}".format(
                        screen.name, event.name, event.handler.to_string()
                    )
                )
    if apk.main_component is None:
        findings.append("apk has no main component")
    if findings:
        raise ValidationError(findings)


def _check_method(apk: ApkFile, method: Method) -> List[str]:
    findings: List[str] = []
    where = method.ref.to_string()

    consts = {}  # register -> literal value (for funcref/start checks)
    for instruction in method.body.walk():
        if isinstance(instruction, Const):
            consts[instruction.dst] = instruction.value

    def check_block(block: Block, defined: Set[str]) -> Set[str]:
        for instruction in block:
            for register in instruction.used_registers():
                if register not in defined:
                    findings.append(
                        "{}: register {!r} used before definition in {!r}".format(
                            where, register, instruction
                        )
                    )
            if isinstance(instruction, Invoke):
                if not is_known(instruction.api):
                    findings.append(
                        "{}: unknown API {!r}".format(where, instruction.api)
                    )
                else:
                    spec = spec_for(instruction.api)
                    if len(instruction.args) != spec.arity:
                        findings.append(
                            "{}: {} called with {} args (wants {})".format(
                                where,
                                instruction.api,
                                len(instruction.args),
                                spec.arity,
                            )
                        )
                    findings.extend(_check_special(apk, where, instruction, consts))
            if isinstance(instruction, CallMethod):
                try:
                    target = apk.resolve(instruction.ref)
                except KeyError:
                    findings.append(
                        "{}: call to missing method {}".format(
                            where, instruction.ref.to_string()
                        )
                    )
                else:
                    if len(instruction.args) != len(target.params):
                        findings.append(
                            "{}: call {} with {} args (wants {})".format(
                                where,
                                instruction.ref.to_string(),
                                len(instruction.args),
                                len(target.params),
                            )
                        )
            if isinstance(instruction, If):
                then_defined = check_block(instruction.then_block, set(defined))
                else_defined = check_block(instruction.else_block, set(defined))
                # only registers defined on *both* arms survive the join
                defined |= then_defined & else_defined
            elif isinstance(instruction, ForEach):
                inner = set(defined)
                inner.add(instruction.var)
                check_block(instruction.body, inner)
                # loop may run zero times: its defs don't survive
            for register in instruction.defined_registers():
                defined.add(register)
        return defined

    check_block(method.body, set(method.params))
    return findings


def _check_special(apk: ApkFile, where: str, instruction: Invoke, consts) -> List[str]:
    findings: List[str] = []
    if instruction.api in _FUNCREF_APIS:
        fn_register = instruction.args[-1]
        fn_value = consts.get(fn_register)
        if not isinstance(fn_value, str):
            findings.append(
                "{}: {} last arg must be a const 'Class.method' string".format(
                    where, instruction.api
                )
            )
        else:
            try:
                apk.resolve(MethodRef.parse(fn_value))
            except (KeyError, ValueError):
                findings.append(
                    "{}: {} references missing method {!r}".format(
                        where, instruction.api, fn_value
                    )
                )
    if instruction.api == "Component.start":
        component_register = instruction.args[1]
        component_name = consts.get(component_register)
        if not isinstance(component_name, str) or component_name not in apk.components:
            findings.append(
                "{}: Component.start target {!r} is not a component".format(
                    where, component_name
                )
            )
    return findings
