"""Fluent builders for writing app programs compactly.

The five evaluated apps (:mod:`repro.apps`) are hand-written IR; this
DSL keeps them readable while still generating real instructions::

    m = MethodBuilder("onStart", params=["this", "intent"])
    url = m.concat(m.config("api_host"), m.const("/api/get-feed"))
    req = m.new_request("GET", url)
    m.add_header(req, "User-Agent", m.user_agent())
    resp = m.execute(req)
    feed = m.body_json(resp)
    with m.foreach(m.json_get(feed, "items")) as item:
        ...

Control-flow helpers (:meth:`MethodBuilder.foreach`,
:meth:`MethodBuilder.if_`) are context managers that nest blocks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, List, Optional, Union

from repro.apk.api import spec_for
from repro.apk.ir import (
    Block,
    CallMethod,
    Const,
    ForEach,
    GetField,
    If,
    Instruction,
    Invoke,
    MethodRef,
    Move,
    New,
    PutField,
    Return,
)
from repro.apk.program import ApkFile, AppClass, Component, EventSpec, Method, Screen

Reg = str


class MethodBuilder:
    """Builds one method body, allocating fresh registers."""

    def __init__(self, name: str, params: Optional[List[str]] = None) -> None:
        self.method = Method(name, params if params is not None else ["this"])
        self._counter = 0
        self._stack: List[Block] = [self.method.body]

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def fresh(self, hint: str = "v") -> Reg:
        self._counter += 1
        return "{}{}".format(hint, self._counter)

    def emit(self, instruction: Instruction) -> Instruction:
        self._stack[-1].append(instruction)
        return instruction

    def _value(self, value: Union[Reg, "Lit"]) -> Reg:
        """Accept a register name or a :class:`Lit`; return a register."""
        if isinstance(value, Lit):
            return self.const(value.value)
        return value

    # ------------------------------------------------------------------
    # core instructions
    # ------------------------------------------------------------------
    def const(self, value: Any, hint: str = "c") -> Reg:
        dst = self.fresh(hint)
        self.emit(Const(dst, value))
        return dst

    def move(self, src: Reg) -> Reg:
        dst = self.fresh("m")
        self.emit(Move(dst, src))
        return dst

    def new(self, class_name: str) -> Reg:
        dst = self.fresh("o")
        self.emit(New(dst, class_name))
        return dst

    def get_field(self, obj: Reg, field: str) -> Reg:
        dst = self.fresh("f")
        self.emit(GetField(dst, obj, field))
        return dst

    def put_field(self, obj: Reg, field: str, src: Reg) -> None:
        self.emit(PutField(obj, field, src))

    def invoke(self, api: str, *args: Union[Reg, "Lit"]) -> Optional[Reg]:
        spec = spec_for(api)
        registers = [self._value(a) for a in args]
        if len(registers) != spec.arity:
            raise ValueError(
                "{} expects {} args, got {}".format(api, spec.arity, len(registers))
            )
        dst = self.fresh("r") if spec.returns else None
        self.emit(Invoke(dst, api, registers))
        return dst

    def call(self, ref: Union[str, MethodRef], *args: Union[Reg, "Lit"]) -> Reg:
        if isinstance(ref, str):
            ref = MethodRef.parse(ref)
        dst = self.fresh("r")
        self.emit(CallMethod(dst, ref, [self._value(a) for a in args]))
        return dst

    def ret(self, src: Optional[Reg] = None) -> None:
        self.emit(Return(src))

    @contextmanager
    def if_(self, cond: Reg):
        instruction = If(cond, Block(), Block())
        self.emit(instruction)
        self._stack.append(instruction.then_block)
        try:
            yield
        finally:
            self._stack.pop()

    @contextmanager
    def else_(self):
        """Attach to the most recent If in the current block."""
        current = self._stack[-1]
        last = current.instructions[-1]
        if not isinstance(last, If):
            raise ValueError("else_ must directly follow if_")
        self._stack.append(last.else_block)
        try:
            yield
        finally:
            self._stack.pop()

    @contextmanager
    def foreach(self, src: Reg, hint: str = "item", parallel: bool = False):
        var = self.fresh(hint)
        instruction = ForEach(var, src, Block(), parallel=parallel)
        self.emit(instruction)
        self._stack.append(instruction.body)
        try:
            yield var
        finally:
            self._stack.pop()

    # ------------------------------------------------------------------
    # convenience wrappers over the API catalog
    # ------------------------------------------------------------------
    def concat(self, *parts: Union[Reg, "Lit"]) -> Reg:
        if not parts:
            raise ValueError("concat needs at least one part")
        registers = [self._value(p) for p in parts]
        acc = registers[0]
        for part in registers[1:]:
            acc = self.invoke("Str.concat", acc, part)
        return acc

    def new_request(self, method: str, url: Reg) -> Reg:
        return self.invoke("Http.newRequest", Lit(method), url)

    def add_header(self, req: Reg, name: str, value: Union[Reg, "Lit"]) -> None:
        self.invoke("Http.addHeader", req, Lit(name), value)

    def add_query(self, req: Reg, key: str, value: Union[Reg, "Lit"]) -> None:
        self.invoke("Http.addQuery", req, Lit(key), value)

    def add_form_field(self, req: Reg, key: str, value: Union[Reg, "Lit"]) -> None:
        self.invoke("Http.addFormField", req, Lit(key), value)

    def set_json_body(self, req: Reg, obj: Reg) -> None:
        self.invoke("Http.setJsonBody", req, obj)

    def execute(self, req: Reg) -> Reg:
        return self.invoke("Http.execute", req)

    def body_json(self, resp: Reg) -> Reg:
        return self.invoke("Http.bodyJson", resp)

    def body_blob(self, resp: Reg) -> Reg:
        return self.invoke("Http.bodyBlob", resp)

    def json_new(self) -> Reg:
        return self.invoke("Json.new")

    def json_put(self, obj: Reg, key: str, value: Union[Reg, "Lit"]) -> None:
        self.invoke("Json.put", obj, Lit(key), value)

    def json_get(self, obj: Reg, key: str) -> Reg:
        return self.invoke("Json.get", obj, Lit(key))

    def json_path(self, obj: Reg, *keys: str) -> Reg:
        for key in keys:
            obj = self.json_get(obj, key)
        return obj

    def json_has(self, obj: Reg, key: str) -> Reg:
        return self.invoke("Json.has", obj, Lit(key))

    def intent_new(self) -> Reg:
        return self.invoke("Intent.new")

    def intent_put(self, intent: Reg, key: str, value: Union[Reg, "Lit"]) -> None:
        self.invoke("Intent.putExtra", intent, Lit(key), value)

    def intent_get(self, intent: Reg, key: str) -> Reg:
        return self.invoke("Intent.getExtra", intent, Lit(key))

    def start_component(self, intent: Reg, component: str) -> None:
        self.invoke("Component.start", intent, Lit(component))

    def rx_just(self, value: Reg) -> Reg:
        return self.invoke("Rx.just", value)

    def rx_defer(self, fn: str) -> Reg:
        return self.invoke("Rx.defer", Lit(fn))

    def rx_map(self, obs: Reg, fn: str) -> Reg:
        return self.invoke("Rx.map", obs, Lit(fn))

    def rx_flat_map(self, obs: Reg, fn: str) -> Reg:
        return self.invoke("Rx.flatMap", obs, Lit(fn))

    def rx_subscribe(self, obs: Reg, fn: str) -> None:
        self.invoke("Rx.subscribe", obs, Lit(fn))

    def user_agent(self) -> Reg:
        return self.invoke("Env.userAgent")

    def cookie(self) -> Reg:
        return self.invoke("Env.cookie")

    def config(self, key: str) -> Reg:
        return self.invoke("Env.config", Lit(key))

    def device_id(self) -> Reg:
        return self.invoke("Env.deviceId")

    def flag(self, key: str) -> Reg:
        return self.invoke("Env.flag", Lit(key))

    def nonce(self) -> Reg:
        return self.invoke("Env.nonce")

    def render(self, value: Reg) -> None:
        self.invoke("Ui.render", value)


class Lit:
    """Wrapper marking a literal argument in builder calls."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


class AppBuilder:
    """Builds a whole :class:`ApkFile`."""

    def __init__(self, package: str, label: str = "") -> None:
        self.apk = ApkFile(package, label=label)

    def app_class(self, name: str) -> AppClass:
        if name not in self.apk.classes:
            self.apk.add_class(AppClass(name))
        return self.apk.classes[name]

    def method(self, class_name: str, builder: MethodBuilder) -> MethodRef:
        app_class = self.app_class(class_name)
        app_class.add_method(builder.method)
        return builder.method.ref

    def component(
        self,
        name: str,
        class_name: str,
        screen: Optional[str] = None,
        kind: str = "activity",
        main: bool = False,
        on_start: str = "onStart",
    ) -> Component:
        component = Component(
            name, class_name, kind=kind, screen=screen, on_start=on_start
        )
        return self.apk.add_component(component, main=main)

    def screen(self, name: str) -> Screen:
        if name not in self.apk.screens:
            self.apk.add_screen(Screen(name))
        return self.apk.screens[name]

    def event(
        self,
        screen_name: str,
        event_name: str,
        handler: Union[str, MethodRef],
        takes_index: bool = False,
        side_effect: bool = False,
        weight: float = 1.0,
        description: str = "",
    ) -> EventSpec:
        if isinstance(handler, str):
            handler = MethodRef.parse(handler)
        spec = EventSpec(
            event_name,
            handler,
            takes_index=takes_index,
            side_effect=side_effect,
            weight=weight,
            description=description,
        )
        return self.screen(screen_name).add_event(spec)

    def config_default(self, key: str, value: str) -> None:
        self.apk.config_defaults[key] = value

    def build(self) -> ApkFile:
        from repro.apk.validate import validate_apk

        validate_apk(self.apk)
        return self.apk
