"""Mini Android-app intermediate representation.

The paper's framework takes an Android APK (Dalvik bytecode) as input.
We replace the binary with a small register-based IR that preserves the
properties the analysis has to fight with:

* values flow through registers, **heap object fields** (with aliasing),
  **Intents** crossing component boundaries, and **Rx observable
  chains**;
* HTTP requests are built piecewise through semantically-modelled API
  calls (:mod:`repro.apk.api`) and fired at ``Http.execute`` sites;
* request contents mix static constants, fields parsed out of earlier
  responses, and **run-time-only environment values** (cookies,
  user-agent, configured API hosts) that static analysis cannot know;
* request bodies vary with **branch conditions** evaluated at run time.

The same program object is consumed twice: :mod:`repro.analysis` walks
it statically, and :mod:`repro.device` interprets it concretely inside
the network simulator.  That shared representation is what makes the
static-analysis-plus-dynamic-learning story testable end to end.
"""

from repro.apk.ir import (
    Block,
    CallMethod,
    Const,
    ForEach,
    GetField,
    If,
    Instruction,
    Invoke,
    MethodRef,
    Move,
    New,
    PutField,
    Return,
)
from repro.apk.program import (
    ApkFile,
    AppClass,
    Component,
    EventSpec,
    Method,
    Screen,
)
from repro.apk.builder import AppBuilder, MethodBuilder
from repro.apk.validate import ValidationError, validate_apk

__all__ = [
    "Instruction",
    "Const",
    "Move",
    "New",
    "GetField",
    "PutField",
    "Invoke",
    "CallMethod",
    "If",
    "ForEach",
    "Return",
    "Block",
    "MethodRef",
    "Method",
    "AppClass",
    "Component",
    "Screen",
    "EventSpec",
    "ApkFile",
    "AppBuilder",
    "MethodBuilder",
    "validate_apk",
    "ValidationError",
]
