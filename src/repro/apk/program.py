"""Program-level containers: methods, classes, components, screens, APK."""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.apk.ir import Block, MethodRef


class Method:
    """A method body with named parameters."""

    def __init__(self, name: str, params: List[str], body: Optional[Block] = None) -> None:
        self.name = name
        self.params = list(params)
        self.body = body if body is not None else Block()
        self.class_name: Optional[str] = None  # set when attached

    @property
    def ref(self) -> MethodRef:
        if self.class_name is None:
            raise ValueError("method {!r} not attached to a class".format(self.name))
        return MethodRef(self.class_name, self.name)

    def __repr__(self) -> str:
        owner = self.class_name or "?"
        return "Method({}.{}({}))".format(owner, self.name, ", ".join(self.params))


class AppClass:
    """A class: a named bag of methods (fields are dynamic)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.methods: Dict[str, Method] = {}

    def add_method(self, method: Method) -> Method:
        method.class_name = self.name
        self.methods[method.name] = method
        return method

    def method(self, name: str) -> Method:
        return self.methods[name]

    def __repr__(self) -> str:
        return "AppClass({}, {} methods)".format(self.name, len(self.methods))


class EventSpec:
    """A user event available on a screen.

    ``takes_index`` marks events parameterized by a list position (e.g.
    "tap the i-th item of the feed").  ``side_effect`` marks events
    whose transaction must never be prefetched (1-click purchase, "like"
    — challenge C3 in the paper).  ``weight`` biases the fuzzer and the
    synthetic user-study traces.
    """

    def __init__(
        self,
        name: str,
        handler: MethodRef,
        takes_index: bool = False,
        side_effect: bool = False,
        weight: float = 1.0,
        description: str = "",
    ) -> None:
        self.name = name
        self.handler = handler
        self.takes_index = takes_index
        self.side_effect = side_effect
        self.weight = weight
        self.description = description

    def __repr__(self) -> str:
        return "EventSpec({} -> {})".format(self.name, self.handler.to_string())


class Screen:
    """A UI screen and the events a user can trigger on it."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.events: Dict[str, EventSpec] = {}

    def add_event(self, event: EventSpec) -> EventSpec:
        self.events[event.name] = event
        return event

    def event(self, name: str) -> EventSpec:
        return self.events[name]

    def event_names(self) -> List[str]:
        return list(self.events)

    def __repr__(self) -> str:
        return "Screen({}, events={})".format(self.name, list(self.events))


class Component:
    """An Android component (activity/service).

    ``on_start`` names the lifecycle method invoked when the component
    is started (directly at app launch or via an Intent); it receives
    ``(this, intent)``.  ``screen`` is the screen the component renders.
    """

    def __init__(
        self,
        name: str,
        class_name: str,
        kind: str = "activity",
        screen: Optional[str] = None,
        on_start: str = "onStart",
    ) -> None:
        if kind not in ("activity", "service"):
            raise ValueError("component kind must be activity|service")
        self.name = name
        self.class_name = class_name
        self.kind = kind
        self.screen = screen
        self.on_start = on_start

    @property
    def start_ref(self) -> MethodRef:
        return MethodRef(self.class_name, self.on_start)

    def __repr__(self) -> str:
        return "Component({}, class={}, screen={})".format(
            self.name, self.class_name, self.screen
        )


class ApkFile:
    """The "app binary": everything the analyzer and runtime consume."""

    def __init__(self, package: str, label: str = "") -> None:
        self.package = package
        self.label = label or package
        self.classes: Dict[str, AppClass] = {}
        self.components: Dict[str, Component] = {}
        self.screens: Dict[str, Screen] = {}
        self.main_component: Optional[str] = None
        #: config keys the app reads via ``Env.config`` with the
        #: defaults a device profile may override (API hosts, client
        #: version, build flavor, ...).
        self.config_defaults: Dict[str, str] = {}

    # -- construction ---------------------------------------------------
    def add_class(self, app_class: AppClass) -> AppClass:
        self.classes[app_class.name] = app_class
        return app_class

    def add_component(self, component: Component, main: bool = False) -> Component:
        self.components[component.name] = component
        if main or self.main_component is None:
            self.main_component = component.name
        return component

    def add_screen(self, screen: Screen) -> Screen:
        self.screens[screen.name] = screen
        return screen

    # -- lookup ----------------------------------------------------------
    def resolve(self, ref: MethodRef) -> Method:
        try:
            return self.classes[ref.class_name].methods[ref.method_name]
        except KeyError:
            raise KeyError("unresolved method {}".format(ref.to_string()))

    def component(self, name: str) -> Component:
        return self.components[name]

    def screen(self, name: str) -> Screen:
        return self.screens[name]

    def main(self) -> Component:
        if self.main_component is None:
            raise ValueError("apk {} has no main component".format(self.package))
        return self.components[self.main_component]

    def all_methods(self) -> List[Method]:
        methods: List[Method] = []
        for app_class in self.classes.values():
            methods.extend(app_class.methods.values())
        return methods

    def instruction_count(self) -> int:
        return sum(
            1 for method in self.all_methods() for _ in method.body.walk()
        )

    def fingerprint(self) -> str:
        """Stable content hash of the app binary.

        Covers every input the analyzer and verification phases read —
        classes with their methods' IR (instruction reprs are
        address-free), components, screens with their event wiring, and
        the config defaults — so any change to an app model invalidates
        disk-cached analysis artifacts keyed on it.
        """
        hasher = hashlib.sha256()

        def feed(text: str) -> None:
            hasher.update(text.encode("utf-8"))
            hasher.update(b"\0")

        feed(self.package)
        feed(self.label)
        feed(self.main_component or "")
        for key in sorted(self.config_defaults):
            feed("config:{}={}".format(key, self.config_defaults[key]))
        for class_name in sorted(self.classes):
            app_class = self.classes[class_name]
            feed("class:{}".format(class_name))
            for method_name in sorted(app_class.methods):
                method = app_class.methods[method_name]
                feed("method:{}({})".format(method_name, ",".join(method.params)))
                for instruction in method.body.walk():
                    feed(repr(instruction))
        for name in sorted(self.components):
            component = self.components[name]
            feed(
                "component:{}:{}:{}:{}:{}".format(
                    component.name,
                    component.class_name,
                    component.kind,
                    component.screen or "",
                    component.on_start,
                )
            )
        for name in sorted(self.screens):
            screen = self.screens[name]
            feed("screen:{}".format(name))
            for event_name in sorted(screen.events):
                event = screen.events[event_name]
                feed(
                    "event:{}:{}:{}:{}:{}".format(
                        event.name,
                        event.handler.to_string(),
                        int(event.takes_index),
                        int(event.side_effect),
                        event.weight,
                    )
                )
        return hasher.hexdigest()

    def __repr__(self) -> str:
        return "ApkFile({}, {} classes, {} components)".format(
            self.package, len(self.classes), len(self.components)
        )
