"""Catalog of semantically-modelled APIs.

The static analyzer needs "semantic models" of the framework APIs an
app calls (the paper extends Extractocol's semantic model, §4.1 and
§5).  This module is the single source of truth both the analyzer and
the interpreter dispatch on.

Tags:

* ``network``      — the HTTP send site (taint sink for requests,
                     taint source for responses).
* ``runtime_only`` — value is unknown to static analysis (wildcard in
                     the signature; dynamic learning must resolve it).
* ``unstable``     — runtime value differs on every call (nonces);
                     requests containing one can never be served from
                     the prefetch cache.
* ``render``       — UI output sink; ends a user-perceived interaction.
* ``intent``       — participates in the Intent map (§4.1 extension 1).
* ``rx``           — RxAndroid operator (§4.1 extension 2).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional


class ApiSpec:
    """Arity and semantic tags of one modelled API."""

    __slots__ = ("name", "arity", "returns", "tags")

    def __init__(self, name: str, arity: int, returns: bool, tags: FrozenSet[str]) -> None:
        self.name = name
        self.arity = arity
        self.returns = returns
        self.tags = tags

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags


def _spec(name: str, arity: int, returns: bool, *tags: str) -> ApiSpec:
    return ApiSpec(name, arity, returns, frozenset(tags))


CATALOG: Dict[str, ApiSpec] = {
    spec.name: spec
    for spec in [
        # strings
        _spec("Str.concat", 2, True),
        # HTTP request construction
        _spec("Http.newRequest", 2, True),
        _spec("Http.addHeader", 3, False),
        _spec("Http.addQuery", 3, False),
        _spec("Http.addFormField", 3, False),
        _spec("Http.setJsonBody", 2, False),
        # the network boundary
        _spec("Http.execute", 1, True, "network"),
        # HTTP response consumption
        _spec("Http.bodyJson", 1, True),
        _spec("Http.bodyBlob", 1, True),
        _spec("Http.header", 2, True),
        # JSON values
        _spec("Json.new", 0, True),
        _spec("Json.put", 3, False),
        _spec("Json.get", 2, True),
        _spec("Json.index", 2, True),
        _spec("Json.has", 2, True),
        # lists
        _spec("List.new", 0, True),
        _spec("List.add", 2, False),
        # Intents (implicit inter-component flow)
        _spec("Intent.new", 0, True, "intent"),
        _spec("Intent.putExtra", 3, False, "intent"),
        _spec("Intent.getExtra", 2, True, "intent"),
        _spec("Component.start", 2, False, "intent"),
        # RxAndroid observable sequences
        _spec("Rx.just", 1, True, "rx"),
        _spec("Rx.defer", 1, True, "rx"),
        _spec("Rx.map", 2, True, "rx"),
        _spec("Rx.flatMap", 2, True, "rx"),
        _spec("Rx.zip", 3, True, "rx"),
        _spec("Rx.subscribe", 2, False, "rx"),
        # environment (run-time-only values)
        _spec("Env.userAgent", 0, True, "runtime_only"),
        _spec("Env.cookie", 0, True, "runtime_only"),
        _spec("Env.config", 1, True, "runtime_only"),
        _spec("Env.deviceId", 0, True, "runtime_only"),
        _spec("Env.flag", 1, True, "runtime_only"),
        _spec("Env.nonce", 0, True, "runtime_only", "unstable"),
        # UI
        _spec("Ui.render", 1, False, "render"),
    ]
}


def spec_for(api: str) -> ApiSpec:
    try:
        return CATALOG[api]
    except KeyError:
        raise KeyError("unknown API {!r}; add it to repro.apk.api.CATALOG".format(api))


def is_known(api: str) -> bool:
    return api in CATALOG


def network_sink(api: str) -> bool:
    return is_known(api) and CATALOG[api].has_tag("network")


def runtime_only(api: str) -> bool:
    return is_known(api) and CATALOG[api].has_tag("runtime_only")


#: Unknown-value source tags the analyzer attaches to wildcards, so the
#: proxy knows *why* a field is unknown (useful in reports/tests).
def unknown_tag(api: str, literal_arg: Optional[str] = None) -> str:
    short = api.split(".", 1)[1]
    if literal_arg is not None:
        return "env:{}:{}".format(short, literal_arg)
    return "env:{}".format(short)
