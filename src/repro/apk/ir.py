"""IR instructions.

Register machine with structured control flow.  Registers are named
strings local to a method; ``this`` refers to the enclosing component
instance.  Heap access goes through :class:`GetField`/:class:`PutField`
on object registers, which is where alias analysis earns its keep.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


class MethodRef:
    """Reference to an app method: ``Class.method``."""

    __slots__ = ("class_name", "method_name")

    def __init__(self, class_name: str, method_name: str) -> None:
        self.class_name = class_name
        self.method_name = method_name

    @classmethod
    def parse(cls, text: str) -> "MethodRef":
        class_name, _, method_name = text.rpartition(".")
        if not class_name:
            raise ValueError("method ref needs Class.method: {!r}".format(text))
        return cls(class_name, method_name)

    def to_string(self) -> str:
        return "{}.{}".format(self.class_name, self.method_name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MethodRef):
            return NotImplemented
        return (self.class_name, self.method_name) == (
            other.class_name,
            other.method_name,
        )

    def __hash__(self) -> int:
        return hash((self.class_name, self.method_name))

    def __repr__(self) -> str:
        return "MethodRef({!r})".format(self.to_string())


class Instruction:
    """Base class for IR instructions."""

    kind = "abstract"

    def defined_registers(self) -> List[str]:
        """Registers this instruction writes."""
        return []

    def used_registers(self) -> List[str]:
        """Registers this instruction reads."""
        return []

    def child_blocks(self) -> List["Block"]:
        return []


class Const(Instruction):
    """``dst = literal``"""

    kind = "const"

    def __init__(self, dst: str, value: Any) -> None:
        self.dst = dst
        self.value = value

    def defined_registers(self) -> List[str]:
        return [self.dst]

    def __repr__(self) -> str:
        return "{} = const {!r}".format(self.dst, self.value)


class Move(Instruction):
    """``dst = src``"""

    kind = "move"

    def __init__(self, dst: str, src: str) -> None:
        self.dst = dst
        self.src = src

    def defined_registers(self) -> List[str]:
        return [self.dst]

    def used_registers(self) -> List[str]:
        return [self.src]

    def __repr__(self) -> str:
        return "{} = move {}".format(self.dst, self.src)


class New(Instruction):
    """``dst = new ClassName`` — a heap allocation site."""

    kind = "new"

    def __init__(self, dst: str, class_name: str) -> None:
        self.dst = dst
        self.class_name = class_name

    def defined_registers(self) -> List[str]:
        return [self.dst]

    def __repr__(self) -> str:
        return "{} = new {}".format(self.dst, self.class_name)


class GetField(Instruction):
    """``dst = obj.field``"""

    kind = "get_field"

    def __init__(self, dst: str, obj: str, field: str) -> None:
        self.dst = dst
        self.obj = obj
        self.field = field

    def defined_registers(self) -> List[str]:
        return [self.dst]

    def used_registers(self) -> List[str]:
        return [self.obj]

    def __repr__(self) -> str:
        return "{} = {}.{}".format(self.dst, self.obj, self.field)


class PutField(Instruction):
    """``obj.field = src``"""

    kind = "put_field"

    def __init__(self, obj: str, field: str, src: str) -> None:
        self.obj = obj
        self.field = field
        self.src = src

    def used_registers(self) -> List[str]:
        return [self.obj, self.src]

    def __repr__(self) -> str:
        return "{}.{} = {}".format(self.obj, self.field, self.src)


class Invoke(Instruction):
    """``dst = Api.call(args...)`` — semantically-modelled API call.

    ``api`` names an entry in :mod:`repro.apk.api`; ``args`` are
    register names.  ``dst`` may be ``None`` for void calls.
    """

    kind = "invoke"

    def __init__(self, dst: Optional[str], api: str, args: Sequence[str] = ()) -> None:
        self.dst = dst
        self.api = api
        self.args = list(args)

    def defined_registers(self) -> List[str]:
        return [self.dst] if self.dst else []

    def used_registers(self) -> List[str]:
        return list(self.args)

    def __repr__(self) -> str:
        target = "{} = ".format(self.dst) if self.dst else ""
        return "{}{}({})".format(target, self.api, ", ".join(self.args))


class CallMethod(Instruction):
    """``dst = Class.method(args...)`` — app-internal call."""

    kind = "call"

    def __init__(
        self, dst: Optional[str], ref: MethodRef, args: Sequence[str] = ()
    ) -> None:
        self.dst = dst
        self.ref = ref
        self.args = list(args)

    def defined_registers(self) -> List[str]:
        return [self.dst] if self.dst else []

    def used_registers(self) -> List[str]:
        return list(self.args)

    def __repr__(self) -> str:
        target = "{} = ".format(self.dst) if self.dst else ""
        return "{}call {}({})".format(target, self.ref.to_string(), ", ".join(self.args))


class If(Instruction):
    """Structured conditional on a boolean register."""

    kind = "if"

    def __init__(self, cond: str, then_block: "Block", else_block: Optional["Block"] = None) -> None:
        self.cond = cond
        self.then_block = then_block
        self.else_block = else_block if else_block is not None else Block()

    def used_registers(self) -> List[str]:
        return [self.cond]

    def child_blocks(self) -> List["Block"]:
        return [self.then_block, self.else_block]

    def __repr__(self) -> str:
        return "if {} then <{}> else <{}>".format(
            self.cond, len(self.then_block), len(self.else_block)
        )


class ForEach(Instruction):
    """Structured loop over a list-valued register.

    ``parallel=True`` models apps issuing the per-element work (e.g.
    thumbnail fetches) on concurrent connections; the device runtime
    spawns the iterations as simultaneous simulator processes and joins
    them, while the static analyzer treats both forms identically.
    """

    kind = "foreach"

    def __init__(self, var: str, src: str, body: "Block", parallel: bool = False) -> None:
        self.var = var
        self.src = src
        self.body = body
        self.parallel = parallel

    def defined_registers(self) -> List[str]:
        return [self.var]

    def used_registers(self) -> List[str]:
        return [self.src]

    def child_blocks(self) -> List["Block"]:
        return [self.body]

    def __repr__(self) -> str:
        return "foreach {} in {} <{}>".format(self.var, self.src, len(self.body))


class Return(Instruction):
    """``return src`` (``src`` may be ``None``)."""

    kind = "return"

    def __init__(self, src: Optional[str] = None) -> None:
        self.src = src

    def used_registers(self) -> List[str]:
        return [self.src] if self.src else []

    def __repr__(self) -> str:
        return "return {}".format(self.src or "")


class Block:
    """A straight-line sequence of instructions."""

    def __init__(self, instructions: Optional[List[Instruction]] = None) -> None:
        self.instructions: List[Instruction] = list(instructions or [])

    def append(self, instruction: Instruction) -> Instruction:
        self.instructions.append(instruction)
        return instruction

    def walk(self):
        """Yield every instruction, recursing into child blocks."""
        for instruction in self.instructions:
            yield instruction
            for child in instruction.child_blocks():
                for inner in child.walk():
                    yield inner

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __repr__(self) -> str:
        return "Block(<{} instructions>)".format(len(self.instructions))
