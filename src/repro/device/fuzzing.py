"""Monkey-style UI fuzzing (the paper's §4.3 and Table 3 baseline).

Generates an arbitrary stream of user events at a fixed interval
(500 ms in the paper) and drives an :class:`AppRuntime` with them.
The network trace it produces is the "Auto UI fuzzing" column of
Table 3 and the workload of the verification phase.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

from repro.apk.ir import Const, Invoke
from repro.apk.program import ApkFile, EventSpec
from repro.device.runtime import AppRuntime, InteractionResult
from repro.netsim.sim import Delay


def destination_screen(apk: ApkFile, event: EventSpec) -> Optional[str]:
    """The screen an event's handler navigates to (via Component.start)."""
    method = apk.resolve(event.handler)
    consts = {}
    for instruction in method.body.walk():
        if isinstance(instruction, Const):
            consts[instruction.dst] = instruction.value
        if isinstance(instruction, Invoke) and instruction.api == "Component.start":
            target = consts.get(instruction.args[1])
            if isinstance(target, str) and target in apk.components:
                return apk.components[target].screen
    return None


class MonkeyFuzzer:
    """Random event streams against a running app."""

    def __init__(
        self,
        runtime: AppRuntime,
        seed: int = 0,
        interval: float = 0.5,
        max_index: int = 29,
        allow_side_effects: bool = True,
    ) -> None:
        self.runtime = runtime
        self.rng = random.Random(seed)
        self.interval = interval
        self.max_index = max_index
        self.allow_side_effects = allow_side_effects
        self.results: List[InteractionResult] = []

    def run(self, duration: float) -> Generator:
        """Simulator process: launch, then fuzz for ``duration`` seconds."""
        started_at = self.runtime.sim.now
        launch = yield self.runtime.sim.spawn(self.runtime.launch())
        self.results.append(launch)
        while self.runtime.sim.now - started_at < duration:
            event_name = self._pick_event()
            if event_name is None:
                yield Delay(self.interval)
                continue
            index = self.rng.randrange(self.max_index + 1)
            result = yield self.runtime.sim.spawn(
                self.runtime.dispatch(event_name, index)
            )
            self.results.append(result)
            yield Delay(self.interval)
        return self.results

    def _pick_event(self) -> Optional[str]:
        names = self.runtime.available_events()
        if not self.allow_side_effects:
            screen = self.runtime.apk.screen(self.runtime.current_screen)
            names = [n for n in names if not screen.event(n).side_effect]
        if not names:
            return None
        return self.rng.choice(sorted(names))
