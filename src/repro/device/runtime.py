"""Concrete app interpreter running inside the network simulator.

:class:`AppRuntime` executes the same IR the static analyzer reads,
with real values: ``Env.*`` comes from the :class:`DeviceProfile`,
``Http.execute`` sends a real :class:`~repro.httpmsg.Request` through
the configured :class:`~repro.netsim.Transport` (direct, or through
the acceleration proxy), and ``Set-Cookie`` headers land in a cookie
jar.  Every user event dispatch is measured from input to final render
— the paper's Frida-measured *user-perceived latency*.

Interpretation is generator-based: ``Http.execute`` suspends the
interpreter into the simulator until the response arrives, so parallel
``ForEach`` bodies genuinely overlap in virtual time.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.apk.ir import (
    Block,
    CallMethod,
    Const,
    ForEach,
    GetField,
    If,
    Instruction,
    Invoke,
    MethodRef,
    Move,
    New,
    PutField,
    Return,
)
from repro.apk.program import ApkFile, Component
from repro.device.profile import DeviceProfile
from repro.httpmsg.body import BlobBody, FormBody, JsonBody
from repro.httpmsg.cookies import CookieJar
from repro.httpmsg.message import Request, Response, Transaction
from repro.httpmsg.uri import Uri
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import Transport

#: HTTP connection-pool size per origin (OkHttp-style: a device opens
#: a handful of concurrent connections per host, so 30 thumbnail
#: fetches drain in waves and each wave pays the origin round trip)
MAX_CONNECTIONS_PER_ORIGIN = 6


class InteractionResult:
    """Measurement of one user interaction (or the app launch)."""

    def __init__(
        self,
        event: str,
        screen: str,
        started_at: float,
        finished_at: float,
        processing_delay: float,
        transactions: List[Transaction],
    ) -> None:
        self.event = event
        self.screen = screen
        self.started_at = started_at
        self.finished_at = finished_at
        self.processing_delay = processing_delay
        self.transactions = transactions

    @property
    def latency(self) -> float:
        """User-perceived latency: input event → rendered output."""
        return self.finished_at - self.started_at

    @property
    def network_delay(self) -> float:
        return max(0.0, self.latency - self.processing_delay)

    def __repr__(self) -> str:
        return "InteractionResult({}, {:.3f}s)".format(self.event, self.latency)


class _ConcreteObj:
    """Concrete heap object (component instance or plain object)."""

    __slots__ = ("class_name", "fields")

    def __init__(self, class_name: str) -> None:
        self.class_name = class_name
        self.fields: Dict[str, Any] = {}


class _Intent:
    __slots__ = ("extras",)

    def __init__(self) -> None:
        self.extras: Dict[str, Any] = {}


class _Obs:
    """Concrete Rx observable: an already-materialized value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


class _RequestBuilder:
    """Mutable request under construction (mirrors ``ARequest``)."""

    def __init__(self, method: str, url: str) -> None:
        self.method = method
        self.url = url
        self.headers: List = []
        self.query: List = []
        self.form: List = []
        self.json_body: Optional[Any] = None

    def build(self) -> Request:
        uri = Uri.parse(self.url)
        request = Request(method=self.method, uri=uri)
        for name, value in self.headers:
            request.headers.add(name, str(value))
        for key, value in self.query:
            request.uri.query.append((key, str(value)))
        if self.json_body is not None:
            request.body = JsonBody(self.json_body)
        elif self.form:
            request.body = FormBody([(k, str(v)) for k, v in self.form])
        return request


class _Frame:
    __slots__ = ("env", "returned", "done")

    def __init__(self, env: Dict[str, Any]) -> None:
        self.env = env
        self.returned: Any = None
        self.done = False


class AppRuntime:
    """Executes an app program for one user on one device."""

    def __init__(
        self,
        apk: ApkFile,
        transport: Transport,
        sim: Simulator,
        profile: Optional[DeviceProfile] = None,
    ) -> None:
        self.apk = apk
        self.transport = transport
        self.sim = sim
        self.profile = profile or DeviceProfile()
        self.cookie_jar = CookieJar()
        self.current_screen: Optional[str] = None
        self.transaction_log: List[Transaction] = []
        self.interactions: List[InteractionResult] = []
        self._instances: Dict[str, _ConcreteObj] = {}
        self._nonce_counter = 0
        self._current_transactions: List[Transaction] = []
        self._active_connections: Dict[str, int] = {}
        self._connection_waiters: Dict[str, List] = {}

    # ------------------------------------------------------------------
    # public interaction API (all are simulator processes)
    # ------------------------------------------------------------------
    def launch(self) -> Generator:
        """Process: launch the app (main component lifecycle)."""
        return self._run_interaction(
            "launch", lambda: self._start_component(self.apk.main(), _Intent()), "launch"
        )

    def dispatch(self, event_name: str, index: Optional[int] = None) -> Generator:
        """Process: fire a user event on the current screen."""
        if self.current_screen is None:
            raise RuntimeError("app not launched")
        screen = self.apk.screen(self.current_screen)
        event = screen.event(event_name)
        method = self.apk.resolve(event.handler)
        owner = self._component_for_screen(screen.name)
        args: List[Any] = [self._instance(owner)]
        if event.takes_index:
            args.append(index if index is not None else 0)
        args = args[: len(method.params)]
        while len(args) < len(method.params):
            args.append(None)
        return self._run_interaction(
            event_name,
            lambda: self._interp_method(event.handler, args),
            "interaction",
        )

    def available_events(self) -> List[str]:
        if self.current_screen is None:
            return []
        return self.apk.screen(self.current_screen).event_names()

    # ------------------------------------------------------------------
    def _run_interaction(self, name: str, body_factory, processing_kind: str) -> Generator:
        started_at = self.sim.now
        previous = self._current_transactions
        self._current_transactions = []
        yield from body_factory()
        processing = self.profile.processing_delay(processing_kind)
        if processing:
            yield Delay(processing)
        result = InteractionResult(
            event=name,
            screen=self.current_screen or "",
            started_at=started_at,
            finished_at=self.sim.now,
            processing_delay=processing,
            transactions=self._current_transactions,
        )
        self._current_transactions = previous
        self.interactions.append(result)
        return result

    def _component_for_screen(self, screen_name: str) -> Component:
        for component in self.apk.components.values():
            if component.screen == screen_name:
                return component
        raise KeyError("no component renders screen {!r}".format(screen_name))

    def _instance(self, component: Component) -> _ConcreteObj:
        if component.name not in self._instances:
            self._instances[component.name] = _ConcreteObj(component.class_name)
        return self._instances[component.name]

    def _start_component(self, component: Component, intent: _Intent) -> Generator:
        method = self.apk.resolve(component.start_ref)
        args: List[Any] = [self._instance(component), intent]
        args = args[: len(method.params)]
        while len(args) < len(method.params):
            args.append(None)
        if component.screen is not None:
            self.current_screen = component.screen
        yield from self._interp_method(component.start_ref, args)

    # ------------------------------------------------------------------
    # interpretation
    # ------------------------------------------------------------------
    def _interp_method(self, ref: MethodRef, args: List[Any]) -> Generator:
        method = self.apk.resolve(ref)
        frame = _Frame(dict(zip(method.params, args)))
        yield from self._interp_block(method.body, frame)
        return frame.returned

    def _interp_block(self, block: Block, frame: _Frame) -> Generator:
        for instruction in block:
            if frame.done:
                return
            yield from self._interp_instruction(instruction, frame)

    def _interp_instruction(self, instruction: Instruction, frame: _Frame) -> Generator:
        env = frame.env
        if isinstance(instruction, Const):
            env[instruction.dst] = instruction.value
        elif isinstance(instruction, Move):
            env[instruction.dst] = env[instruction.src]
        elif isinstance(instruction, New):
            env[instruction.dst] = _ConcreteObj(instruction.class_name)
        elif isinstance(instruction, GetField):
            obj = env[instruction.obj]
            if isinstance(obj, _ConcreteObj):
                env[instruction.dst] = obj.fields.get(instruction.field)
            elif isinstance(obj, dict):
                env[instruction.dst] = obj.get(instruction.field)
            else:
                env[instruction.dst] = None
        elif isinstance(instruction, PutField):
            obj = env[instruction.obj]
            if isinstance(obj, _ConcreteObj):
                obj.fields[instruction.field] = env[instruction.src]
            elif isinstance(obj, dict):
                obj[instruction.field] = env[instruction.src]
        elif isinstance(instruction, Invoke):
            result = yield from self._invoke(instruction, frame)
            if instruction.dst is not None:
                env[instruction.dst] = result
        elif isinstance(instruction, CallMethod):
            value = yield from self._interp_method(
                instruction.ref, [env[a] for a in instruction.args]
            )
            if instruction.dst is not None:
                env[instruction.dst] = value
        elif isinstance(instruction, If):
            taken = instruction.then_block if env[instruction.cond] else instruction.else_block
            yield from self._interp_block(taken, frame)
        elif isinstance(instruction, ForEach):
            yield from self._interp_foreach(instruction, frame)
        elif isinstance(instruction, Return):
            frame.returned = env[instruction.src] if instruction.src else None
            frame.done = True
        else:  # pragma: no cover
            raise TypeError("unknown instruction {!r}".format(instruction))

    def _interp_foreach(self, instruction: ForEach, frame: _Frame) -> Generator:
        source = frame.env[instruction.src]
        items = source if isinstance(source, list) else []
        if not instruction.parallel:
            for item in items:
                frame.env[instruction.var] = item
                yield from self._interp_block(instruction.body, frame)
            return
        # parallel: each iteration is its own simulator process over a
        # forked frame (registers defined inside stay per-iteration)
        processes = []
        for item in items:
            iteration_frame = _Frame(dict(frame.env))
            iteration_frame.env[instruction.var] = item
            processes.append(
                self.sim.spawn(self._interp_block(instruction.body, iteration_frame))
            )
        for process in processes:
            yield process

    # ------------------------------------------------------------------
    # API dispatch
    # ------------------------------------------------------------------
    def _invoke(self, instruction: Invoke, frame: _Frame) -> Generator:
        api = instruction.api
        args = [frame.env[a] for a in instruction.args]

        # --- network (the only genuinely asynchronous API) -----------
        if api == "Http.execute":
            return (yield from self._execute(args[0]))
        if api == "Rx.defer":
            fn = args[0]
            result = yield from self._rx_call(frame, fn, [])
            return result if isinstance(result, _Obs) else _Obs(result)
        if api == "Rx.map":
            obs, fn = args
            value = obs.value if isinstance(obs, _Obs) else obs
            result = yield from self._rx_call(frame, fn, [value])
            return _Obs(result)
        if api == "Rx.flatMap":
            obs, fn = args
            value = obs.value if isinstance(obs, _Obs) else obs
            result = yield from self._rx_call(frame, fn, [value])
            return result if isinstance(result, _Obs) else _Obs(result)
        if api == "Rx.zip":
            left, right, fn = args
            lvalue = left.value if isinstance(left, _Obs) else left
            rvalue = right.value if isinstance(right, _Obs) else right
            result = yield from self._rx_call(frame, fn, [lvalue, rvalue])
            return result if isinstance(result, _Obs) else _Obs(result)
        if api == "Rx.subscribe":
            obs, fn = args
            value = obs.value if isinstance(obs, _Obs) else obs
            yield from self._rx_call(frame, fn, [value])
            return None
        if api == "Component.start":
            intent, name = args
            component = self.apk.components[str(name)]
            carried = intent if isinstance(intent, _Intent) else _Intent()
            yield from self._start_component(component, carried)
            return None

        # --- synchronous APIs ----------------------------------------
        return self._invoke_sync(api, args)

    def _rx_call(self, frame: _Frame, fn: Any, upstream: List[Any]) -> Generator:
        ref = MethodRef.parse(str(fn))
        this = frame.env.get("this")
        result = yield from self._interp_method(ref, [this] + upstream)
        return result

    def _invoke_sync(self, api: str, args: List[Any]) -> Any:
        if api == "Str.concat":
            return "{}{}".format(_text(args[0]), _text(args[1]))
        if api == "Http.newRequest":
            return _RequestBuilder(str(args[0]), _text(args[1]))
        if api == "Http.addHeader":
            args[0].headers.append((str(args[1]), args[2]))
            return None
        if api == "Http.addQuery":
            args[0].query.append((str(args[1]), args[2]))
            return None
        if api == "Http.addFormField":
            args[0].form.append((str(args[1]), args[2]))
            return None
        if api == "Http.setJsonBody":
            args[0].json_body = args[1]
            return None
        if api == "Http.bodyJson":
            response = args[0]
            if isinstance(response, Response) and isinstance(response.body, JsonBody):
                return response.body.value
            return {}
        if api == "Http.bodyBlob":
            response = args[0]
            if isinstance(response, Response) and isinstance(response.body, BlobBody):
                return response.body.label
            return ""
        if api == "Http.header":
            response = args[0]
            if isinstance(response, Response):
                return response.headers.get(str(args[1]), "")
            return ""
        if api == "Json.new":
            return {}
        if api == "Json.put":
            if isinstance(args[0], dict):
                args[0][str(args[1])] = args[2]
            return None
        if api == "Json.get":
            if isinstance(args[0], dict):
                return args[0].get(str(args[1]))
            if isinstance(args[0], _Intent):
                return args[0].extras.get(str(args[1]))
            return None
        if api == "Json.index":
            sequence, index = args
            if isinstance(sequence, list) and sequence:
                if not isinstance(index, int):
                    index = 0
                index = max(0, min(index, len(sequence) - 1))
                return sequence[index]
            return None
        if api == "Json.has":
            if isinstance(args[0], dict):
                return str(args[1]) in args[0] and args[0][str(args[1])] is not None
            return False
        if api == "List.new":
            return []
        if api == "List.add":
            if isinstance(args[0], list):
                args[0].append(args[1])
            return None
        if api == "Intent.new":
            return _Intent()
        if api == "Intent.putExtra":
            if isinstance(args[0], _Intent):
                args[0].extras[str(args[1])] = args[2]
            return None
        if api == "Intent.getExtra":
            if isinstance(args[0], _Intent):
                return args[0].extras.get(str(args[1]))
            return None
        if api == "Rx.just":
            return _Obs(args[0])
        if api == "Env.userAgent":
            return self.profile.user_agent
        if api == "Env.cookie":
            return self.cookie_jar.cookie_header(self._primary_origin())
        if api == "Env.config":
            return self.profile.config_value(str(args[0]), self.apk.config_defaults)
        if api == "Env.deviceId":
            return self.profile.device_id
        if api == "Env.flag":
            return self.profile.flag(str(args[0]))
        if api == "Env.nonce":
            self._nonce_counter += 1
            return "nonce-{}-{}".format(self.profile.user, self._nonce_counter)
        if api == "Ui.render":
            return None
        raise KeyError("no concrete semantics for {}".format(api))

    def _primary_origin(self) -> str:
        host = self.profile.config_value("api_host", self.apk.config_defaults)
        if not host:
            return ""
        try:
            return Uri.parse(host).origin()
        except ValueError:
            return host

    # ------------------------------------------------------------------
    def _execute(self, builder: _RequestBuilder) -> Generator:
        request = builder.build()
        origin = request.uri.origin()
        started_at = self.sim.now
        yield from self._acquire_connection(origin)
        try:
            response = yield from self.transport.send(request, self.profile.user)
        finally:
            self._release_connection(origin)
        transaction = Transaction(
            request=request,
            response=response,
            started_at=started_at,
            finished_at=self.sim.now,
            user=self.profile.user,
        )
        self.transaction_log.append(transaction)
        self._current_transactions.append(transaction)
        self.cookie_jar.store_from_response(origin, response)
        return response

    def _acquire_connection(self, origin: str) -> Generator:
        while self._active_connections.get(origin, 0) >= MAX_CONNECTIONS_PER_ORIGIN:
            waiter = self.sim.event()
            self._connection_waiters.setdefault(origin, []).append(waiter)
            yield waiter
        self._active_connections[origin] = self._active_connections.get(origin, 0) + 1

    def _release_connection(self, origin: str) -> None:
        self._active_connections[origin] = max(
            0, self._active_connections.get(origin, 0) - 1
        )
        waiters = self._connection_waiters.get(origin)
        if waiters:
            waiters.pop(0).succeed(None)


def _text(value: Any) -> str:
    if value is None:
        return ""
    return str(value)
