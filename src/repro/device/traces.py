"""Synthetic user-study traces and their replay.

The paper records 30 participants freely using each app for three
minutes (450 minutes total) with Appetizer, then replays the event
traces.  We synthesize equivalent traces: weighted random walks over
the app's screen graph with human think times, generated per
participant from a seed, replayed in virtual time against an
:class:`AppRuntime`.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

from repro.apk.program import ApkFile
from repro.device.fuzzing import destination_screen
from repro.device.runtime import AppRuntime, InteractionResult
from repro.netsim.sim import Delay

#: human think-time range in seconds (uniform), per the intuition that
#: users glance 2–12 s between taps while browsing
THINK_TIME_RANGE = (2.0, 12.0)


class TraceEvent:
    """One recorded user action: wait ``think_time``, then fire."""

    __slots__ = ("think_time", "event", "index")

    def __init__(self, think_time: float, event: str, index: Optional[int]) -> None:
        self.think_time = think_time
        self.event = event
        self.index = index

    def __repr__(self) -> str:
        return "TraceEvent(+{:.1f}s {}[{}])".format(
            self.think_time, self.event, self.index
        )


class UserTrace:
    """A participant's session: launch followed by timed events."""

    def __init__(self, user: str, events: List[TraceEvent], duration: float) -> None:
        self.user = user
        self.events = events
        self.duration = duration

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return "UserTrace({}, {} events)".format(self.user, len(self.events))


def generate_user_study(
    apk: ApkFile,
    participants: int = 30,
    duration: float = 180.0,
    seed: int = 42,
    include_side_effects: bool = True,
) -> List[UserTrace]:
    """Synthesize the paper's 30-participant × 3-minute user study."""
    traces = []
    for participant in range(participants):
        user = "user-{:02d}".format(participant + 1)
        traces.append(
            _generate_trace(
                apk,
                user=user,
                duration=duration,
                rng=random.Random("{}|{}".format(seed, participant)),
                include_side_effects=include_side_effects,
            )
        )
    return traces


def _generate_trace(
    apk: ApkFile,
    user: str,
    duration: float,
    rng: random.Random,
    include_side_effects: bool,
) -> UserTrace:
    main = apk.main()
    screen = main.screen
    elapsed = 0.0
    events: List[TraceEvent] = []
    while True:
        think = rng.uniform(*THINK_TIME_RANGE)
        elapsed += think
        if elapsed >= duration or screen is None:
            break
        specs = list(apk.screen(screen).events.values())
        if not include_side_effects:
            specs = [s for s in specs if not s.side_effect]
        if not specs:
            break
        weights = [s.weight for s in specs]
        spec = rng.choices(specs, weights=weights, k=1)[0]
        index = rng.randrange(12) if spec.takes_index else None
        events.append(TraceEvent(think, spec.name, index))
        destination = destination_screen(apk, spec)
        if destination is not None:
            screen = destination
    return UserTrace(user, events, duration)


def replay_trace(runtime: AppRuntime, trace: UserTrace) -> Generator:
    """Simulator process replaying a trace in real (virtual) time.

    Returns the list of :class:`InteractionResult` including the
    launch.  Events that are invalid on the current screen (possible if
    the runtime diverges from the generator's walk) are skipped.
    """
    results: List[InteractionResult] = []
    launch = yield runtime.sim.spawn(runtime.launch())
    results.append(launch)
    for event in trace.events:
        if event.think_time > 0:
            yield Delay(event.think_time)
        if event.event not in runtime.available_events():
            continue
        result = yield runtime.sim.spawn(runtime.dispatch(event.event, event.index))
        results.append(result)
    return results
