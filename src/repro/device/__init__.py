"""Client-device runtime.

Interprets the same app IR the static analyzer consumes, but
*concretely*: real values, real branch decisions, real HTTP messages
sent through the network simulator.  Replaces the paper's Nexus 6 +
Frida measurement setup.

* :mod:`repro.device.profile` — device/user state the app reads at run
  time (user agent, cookies, config, feature flags).
* :mod:`repro.device.runtime` — the interpreter and interaction
  measurement (user-perceived latency from input to rendered output).
* :mod:`repro.device.fuzzing` — Monkey-style random UI event streams.
* :mod:`repro.device.traces` — synthetic user-study traces (30
  participants × 3 minutes) and their replay.
"""

from repro.device.profile import DeviceProfile
from repro.device.runtime import AppRuntime, InteractionResult
from repro.device.fuzzing import MonkeyFuzzer
from repro.device.traces import TraceEvent, UserTrace, generate_user_study, replay_trace

__all__ = [
    "DeviceProfile",
    "AppRuntime",
    "InteractionResult",
    "MonkeyFuzzer",
    "TraceEvent",
    "UserTrace",
    "generate_user_study",
    "replay_trace",
]
