"""Device profile: the run-time environment an app executes against.

Everything ``Env.*`` APIs return comes from here — the values static
analysis cannot know and the proxy must learn dynamically (§4.2).
"""

from __future__ import annotations

from typing import Dict, Optional


class DeviceProfile:
    """Per-device, per-user run-time values.

    ``config`` overrides the app's :attr:`ApkFile.config_defaults`
    (API hosts, client version, build flavor).  ``flags`` drive
    run-time branch conditions (e.g. whether the user has a stored
    credit id — Fig. 8).  ``processing`` holds client-side processing
    delays in seconds: keys ``launch`` and ``interaction`` (the paper's
    Figures 13/14 split user-perceived latency into network +
    processing).
    """

    def __init__(
        self,
        user: str = "user-1",
        user_agent: str = "Mozilla/5.0 (Linux; Android 7.1; Nexus 6)",
        device_id: str = "device-0001",
        config: Optional[Dict[str, str]] = None,
        flags: Optional[Dict[str, bool]] = None,
        processing: Optional[Dict[str, float]] = None,
    ) -> None:
        self.user = user
        self.user_agent = user_agent
        self.device_id = device_id
        self.config: Dict[str, str] = dict(config or {})
        self.flags: Dict[str, bool] = dict(flags or {})
        self.processing: Dict[str, float] = dict(processing or {})

    def config_value(self, key: str, defaults: Dict[str, str]) -> str:
        if key in self.config:
            return self.config[key]
        if key in defaults:
            return defaults[key]
        return ""

    def flag(self, key: str) -> bool:
        return self.flags.get(key, False)

    def processing_delay(self, kind: str) -> float:
        return self.processing.get(kind, 0.0)

    def copy_for_user(self, user: str, device_id: Optional[str] = None) -> "DeviceProfile":
        return DeviceProfile(
            user=user,
            user_agent=self.user_agent,
            device_id=device_id or "device-{}".format(user),
            config=dict(self.config),
            flags=dict(self.flags),
            processing=dict(self.processing),
        )

    def __repr__(self) -> str:
        return "DeviceProfile(user={!r})".format(self.user)
