"""Signature-dispatch microbenchmark: indexed matcher vs naive scan.

Runs the same workload as ``python -m repro bench`` and asserts —
via the :mod:`repro.metrics.perf` counters, not wall clock — that the
indexed hot path does asymptotically less regex work than the seed's
linear scan, while agreeing with it on every request.  Writes the
result dict to ``BENCH_matching.json`` at the repo root as the
trajectory artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

from conftest import banner, run_once

from repro.experiments.matching_bench import run_matching_bench

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_matching.json"
REQUESTS = 10_000


def test_perf_matching(benchmark):
    result = run_once(benchmark, run_matching_bench, total_requests=REQUESTS, seed=0)

    banner("Signature dispatch: indexed vs naive linear scan")
    workload = result["workload"]
    naive, indexed = result["naive"], result["indexed"]
    print(
        "workload: {} requests over {} signatures from {} apps "
        "({} matched)".format(
            workload["requests"],
            workload["signatures"],
            len(workload["apps"]),
            workload["matched"],
        )
    )
    print(
        "{:<14} {:>22} {:>12}".format("path", "regex attempts/request", "wall [s]")
    )
    print(
        "{:<14} {:>22.2f} {:>12.3f}".format(
            "naive scan", naive["regex_attempts_per_request"], naive["wall_s"]
        )
    )
    print(
        "{:<14} {:>22.2f} {:>12.3f}".format(
            "indexed", indexed["regex_attempts_per_request"], indexed["wall_s"]
        )
    )
    print(
        "candidates/request: {:.2f}   memo hits: {}   "
        "regex-attempt ratio: {:.1f}x".format(
            indexed["candidates_per_request"],
            indexed["memo_hits"],
            result["derived"]["regex_attempt_ratio"],
        )
    )

    # the two paths must agree on every single request
    assert result["differential"]["mismatches"] == 0

    # the naive scan tries every same-method signature's regex; with
    # ~50 signatures that is tens of attempts per request.  The index
    # must cut that to ~O(1): a small constant per request, and at
    # least several-fold below naive (robust margin — the measured
    # ratio is two orders of magnitude)
    assert naive["regex_attempts_per_request"] > 10.0
    assert indexed["regex_attempts_per_request"] < 2.0
    assert result["derived"]["regex_attempt_ratio"] >= 3.0
    # candidate filtering, not just memoization, does the work: even
    # counting memo hits as zero-candidate lookups, the average number
    # of candidates examined stays far below the signature count
    assert indexed["candidates_per_request"] < workload["signatures"] / 4.0

    ARTIFACT.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print("wrote {}".format(ARTIFACT.name))
