"""Fig. 17: Wish latency/data-usage trade-off vs prefetch probability.

Paper: median latency falls from 1,881 ms (no prefetching) to 784 ms at
probability 1.0 while normalized data usage rises 1.0x → 4.2x, with the
latency curve flattening once the majority of transactions prefetch.
"""

from conftest import banner, run_once

from repro.experiments import runner

PAPER = {
    0.0: (1881, 1.0),
    0.25: (1085, 1.7),
    0.5: (947, 2.1),
    0.75: (871, 3.2),
    0.9: (792, 3.7),
    1.0: (784, 4.2),
}


def test_fig17_probability_tradeoff(benchmark):
    rows = run_once(
        benchmark, runner.fig17_probability_tradeoff,
        probabilities=(0.0, 0.25, 0.5, 0.75, 0.9, 1.0), participants=10,
    )
    banner("Fig. 17 — Wish: latency vs data usage across prefetch probability")
    print("{:>6} {:>12} {:>8} | paper".format("prob", "median", "usage"))
    for row in rows:
        paper_ms, paper_usage = PAPER[row["probability"]]
        print(
            "{:>5.0f}% {:>10.0f}ms {:>7.2f}x | {}ms {:.1f}x".format(
                100 * row["probability"],
                1000 * row["median_latency"],
                row["normalized_data_usage"],
                paper_ms, paper_usage,
            )
        )
    latencies = [row["median_latency"] for row in rows]
    usages = [row["normalized_data_usage"] for row in rows]
    # monotone trade-off, with the paper's flattening at high probability
    assert usages == sorted(usages)
    assert latencies[0] == max(latencies)
    assert latencies[-1] == min(latencies)
    drop_low = latencies[0] - latencies[2]   # 0 -> 0.5
    drop_high = latencies[2] - latencies[-1]  # 0.5 -> 1.0
    assert drop_low > 0
    assert latencies[0] / latencies[-1] > 1.5  # at least 1.5x better
