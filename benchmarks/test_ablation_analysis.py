"""Ablation: the §4.1 analysis extensions.

The paper motivates three extensions over stock Extractocol — Intent
support, RxAndroid semantics, and precise alias/heap analysis.  This
bench re-analyzes every app with each extension disabled and reports
how many dependencies (prefetch opportunities) each one contributes.
"""

from conftest import banner, run_once

from repro.analysis.pipeline import AnalysisOptions, analyze_apk
from repro.apps import all_apps

ABLATIONS = [
    ("full", AnalysisOptions(run_slicing=False)),
    ("no intents", AnalysisOptions(run_slicing=False, intent_support=False)),
    ("no rx", AnalysisOptions(run_slicing=False, rx_support=False)),
    ("no alias/heap", AnalysisOptions(run_slicing=False, precise_heap=False)),
]


def run_ablations():
    table = {}
    for name, spec in all_apps().items():
        apk = spec.build_apk()
        table[spec.label] = {
            label: analyze_apk(apk, options).summary()
            for label, options in ABLATIONS
        }
    return table


def test_ablation_analysis_extensions(benchmark):
    table = run_once(benchmark, run_ablations)
    banner("Ablation — §4.1 analyzer extensions (dependencies found)")
    print(
        "{:<14} {:>6} {:>12} {:>8} {:>15}".format(
            "App", "full", "no intents", "no rx", "no alias/heap"
        )
    )
    for app, results in table.items():
        print(
            "{:<14} {:>6} {:>12} {:>8} {:>15}".format(
                app,
                results["full"]["dependencies"],
                results["no intents"]["dependencies"],
                results["no rx"]["dependencies"],
                results["no alias/heap"]["dependencies"],
            )
        )
        full = results["full"]["dependencies"]
        assert results["no intents"]["dependencies"] < full
        # rx and alias matter wherever the app uses those constructs
        assert results["no rx"]["dependencies"] <= full
        assert results["no alias/heap"]["dependencies"] <= full
    # the shopping apps route their detail request through Rx + aliases
    assert table["Wish"]["no rx"]["dependencies"] < table["Wish"]["full"]["dependencies"]
    assert (
        table["Wish"]["no alias/heap"]["dependencies"]
        < table["Wish"]["full"]["dependencies"]
    )
