"""Fig. 11: DoorDash successive dependency chain.

Paper: store list → store menu → menu detail → suggestion, each hop
keyed by an id from the previous response.
"""

from conftest import banner, run_once

from repro.experiments import runner


def test_fig11_doordash_chain(benchmark):
    chain = run_once(benchmark, runner.fig11_doordash_chain)
    banner("Fig. 11 — DoorDash successive dependency chain")
    print(" -> ".join(chain))
    print("paper: Store list -> Store menu -> Menu detail -> Suggestion")
    assert len(chain) >= 4
    assert chain[0].startswith("StoreListActivity")
    assert any(site.startswith("StoreActivity") for site in chain)
    assert any(site.startswith("MenuItemActivity") for site in chain)
