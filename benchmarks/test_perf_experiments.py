"""Parallel experiment engine benchmark: fan-out, cache, sim fast path.

Three measurements, one per layer of the engine, written to
``BENCH_experiments.json`` at the repo root:

* a fig15-style sweep (all apps x RTTs) run serially and over a
  4-worker process pool with a warm on-disk artifact cache — rows must
  be byte-identical; wall-clock speedup is recorded, and asserted
  (>= 2x) only on machines with >= 4 cores, since a 1-core container
  cannot physically show it.  On *any* machine the parallel entry
  point must not lose to serial by more than noise — the break-even
  projection falls back to in-process execution when the pool cannot
  pay for itself;
* the analysis artifact cache: cold ``prepare_app`` vs a warm load
  from disk for the same app;
* the simulator event loop: the same spawn-heavy workload under the
  fast-path and heap-only compat schedulers.  The structural claim is
  counter-based (inline starts replace scheduler pops one-for-one);
  events/sec in both modes is recorded for the trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from conftest import banner

from repro.experiments import parallel, scenario
from repro.experiments.cache import AnalysisArtifactCache
from repro.metrics.perf import PERF
from repro.netsim.sim import Delay, Simulator

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_experiments.json"

SWEEP_RTTS = (0.050, 0.100)
SWEEP_PARTICIPANTS = 4
SWEEP_JOBS = 4


def _warm_cache(tmp_path):
    """Analyze every app once, persisting artifacts to a fresh cache."""
    cache = AnalysisArtifactCache(str(tmp_path / "artifact-cache"))
    scenario._PREPARED.clear()
    started = time.perf_counter()
    for name in parallel.plan_cells("table3"):
        scenario.prepare_app(name[1]["name"], disk_cache=cache)
    cold_s = time.perf_counter() - started

    # warm load: drop the in-process memo so prepare comes from disk
    scenario._PREPARED.clear()
    started = time.perf_counter()
    for name in parallel.plan_cells("table3"):
        scenario.prepare_app(name[1]["name"], disk_cache=cache)
    warm_s = time.perf_counter() - started
    return cache, {"cold_prepare_s": cold_s, "warm_prepare_s": warm_s,
                   "hits": cache.hits, "writes": cache.writes}


@pytest.mark.bench
def test_perf_experiments(tmp_path):
    result = {"cpu_count": os.cpu_count(), "jobs": SWEEP_JOBS}

    # -- layer 2: artifact cache, cold vs warm -------------------------
    cache, cache_stats = _warm_cache(tmp_path)
    result["artifact_cache"] = cache_stats

    # -- layer 1: serial vs process-pool sweep -------------------------
    params = {"rtts": SWEEP_RTTS, "participants": SWEEP_PARTICIPANTS}
    started = time.perf_counter()
    serial_rows = parallel.SERIAL_RUNNERS["fig15"](**params)
    serial_s = time.perf_counter() - started

    with PERF.capture() as perf:
        started = time.perf_counter()
        pooled_rows = parallel.run_figure(
            "fig15",
            jobs=SWEEP_JOBS,
            params=dict(params),
            artifact_cache=cache,
            capture_perf=True,
        )
        parallel_s = time.perf_counter() - started
        counters = dict(perf.counters)

    identical = json.dumps(pooled_rows, sort_keys=True) == json.dumps(
        serial_rows, sort_keys=True
    )
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    result["sweep"] = {
        "figure": "fig15",
        "cells": counters.get("experiments.cells", 0),
        "serial_wall_s": serial_s,
        "parallel_wall_s": parallel_s,
        "speedup": speedup,
        "byte_identical": identical,
        "worker_counters": {
            name: counters[name]
            for name in sorted(counters)
            if name.startswith(("analysis_cache.", "experiments."))
        },
    }

    # -- layer 3: sim fast path vs compat ------------------------------
    def spawn_chains(sim, chains=4000):
        def leaf():
            yield Delay(0.0)
            return 1

        def chain():
            total = yield sim.spawn(leaf())
            total += yield sim.spawn(leaf())
            yield Delay(0.001)
            return total

        def root():
            # sequential spawn-then-wait chains: the transport/origin
            # pattern the inline-completion path exists for
            total = 0
            for _ in range(chains):
                total += yield sim.spawn(chain())
            # plus a batch of overlapping children (never inlined —
            # siblings are queued ahead), so both paths are exercised
            children = [sim.spawn(leaf()) for _ in range(chains // 4)]
            for child in children:
                total += yield child
            return total

        return root

    sim_modes = {}
    for mode, fast_path in (("fast", True), ("compat", False)):
        best_s, events, inline = None, 0, 0
        for _ in range(3):
            sim = Simulator(fast_path=fast_path)
            with PERF.capture():
                started = time.perf_counter()
                sim.run_process(spawn_chains(sim)())
                elapsed = time.perf_counter() - started
                events = PERF.get("sim.events")
                inline = PERF.get("sim.inline_starts")
            if best_s is None or elapsed < best_s:
                best_s = elapsed
        steps = events + inline
        sim_modes[mode] = {
            "wall_s": best_s,
            "scheduler_pops": events,
            "inline_starts": inline,
            "steps_per_s": steps / best_s if best_s else 0.0,
        }
    result["sim"] = sim_modes
    result["sim"]["pop_reduction"] = 1.0 - (
        sim_modes["fast"]["scheduler_pops"]
        / float(sim_modes["compat"]["scheduler_pops"])
    )

    banner("Parallel experiment engine: fan-out / cache / sim fast path")
    print(
        "sweep: {} cells, serial {:.2f}s, {}-worker pool {:.2f}s "
        "({:.2f}x, byte-identical={})".format(
            result["sweep"]["cells"], serial_s, SWEEP_JOBS, parallel_s,
            speedup, identical,
        )
    )
    print(
        "artifact cache: cold prepare {:.2f}s -> warm {:.3f}s "
        "({} writes, {} hits)".format(
            cache_stats["cold_prepare_s"], cache_stats["warm_prepare_s"],
            cache_stats["writes"], cache_stats["hits"],
        )
    )
    for mode in ("fast", "compat"):
        stats = sim_modes[mode]
        print(
            "sim {:<7} {:>9.0f} steps/s  ({} pops, {} inline starts)".format(
                mode, stats["steps_per_s"], stats["scheduler_pops"],
                stats["inline_starts"],
            )
        )

    # correctness is unconditional
    assert identical
    # the cache turns multi-second analysis+fuzzing into a sub-second load
    assert cache_stats["warm_prepare_s"] < cache_stats["cold_prepare_s"] / 2.0
    assert cache_stats["hits"] >= cache_stats["writes"] > 0
    # structural fast-path claim: every inline start replaces exactly one
    # scheduler pop — same total steps, fewer queue round-trips
    assert sim_modes["fast"]["inline_starts"] > 0
    assert sim_modes["compat"]["inline_starts"] == 0
    assert (
        sim_modes["fast"]["scheduler_pops"] + sim_modes["fast"]["inline_starts"]
        == sim_modes["compat"]["scheduler_pops"]
    )
    # the break-even fallback guarantees jobs>1 is never a regression:
    # on few-core boxes the projection keeps the sweep serial, so the
    # parallel entry point costs at most noise over the serial oracle
    assert parallel_s <= serial_s * 1.10
    # wall-clock speedup needs real cores; a 1-core container cannot show it
    if (os.cpu_count() or 1) >= SWEEP_JOBS:
        assert speedup >= 2.0

    ARTIFACT.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print("wrote {}".format(ARTIFACT.name))
