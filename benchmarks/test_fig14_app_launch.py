"""Fig. 14: user-perceived latency of the app launch.

Paper: launch reductions are much smaller than the main interaction
(11–36%) because launch requests arrive serially and often reach the
proxy while the corresponding prefetches are still in flight.  In our
simulator the same effect is stronger (access-link bandwidth dominates
the launch), so reductions are smaller still — the asserted shape is
"launch improves less than the main interaction, and never regresses".
"""

from conftest import banner, run_once

from repro.experiments import runner

PAPER = {
    "Wish": (4.3, 3.6, 0.18),
    "Geek": (5.1, 4.5, 0.11),
    "DoorDash": (8.6, 7.2, 0.17),
    "Purple Ocean": (3.3, 2.8, 0.16),
    "Postmates": (5.3, 3.4, 0.36),
}


def test_fig14_app_launch(benchmark):
    rows = run_once(benchmark, runner.fig14_app_launch, runs=10)
    main_rows = {r["app"]: r for r in runner.fig13_main_interaction(runs=5)}
    banner("Fig. 14 — App-launch latency (Orig vs APPx)")
    print("{:<14} {:>10} {:>10} {:>6} | paper".format("App", "Orig", "APPx", "red."))
    for row in rows:
        paper = PAPER[row["app"]]
        print(
            "{:<14} {:>9.2f}s {:>9.2f}s {:>5.0f}% | {:.1f}->{:.1f} ({:.0f}%)".format(
                row["app"],
                row["orig"]["latency"],
                row["appx"]["latency"],
                100 * row["reduction"],
                paper[0], paper[1], 100 * paper[2],
            )
        )
        assert row["reduction"] >= -0.01
        assert row["reduction"] < main_rows[row["app"]]["reduction"]
