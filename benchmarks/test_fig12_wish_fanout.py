"""Fig. 12: Wish — multiple relationships on a single transaction.

Paper: the product-detail response feeds the merchant page, ratings,
group buying, and the other product image; the feed response likewise
fans out to several successors.
"""

from conftest import banner, run_once

from repro.experiments import runner


def test_fig12_wish_fanout(benchmark):
    fanout = run_once(benchmark, runner.fig12_wish_fanout)
    banner("Fig. 12 — Wish fan-out per predecessor transaction")
    for site, successors in sorted(fanout.items(), key=lambda kv: -kv[1]):
        print("  {:<36} -> {} successors".format(site, successors))
    print("paper: product detail feeds merchant / ratings / images / related")
    detail = max(v for k, v in fanout.items() if k.startswith("DetailActivity"))
    feed = max(v for k, v in fanout.items() if k.startswith("FeedActivity"))
    assert detail >= 3
    assert feed >= 3
