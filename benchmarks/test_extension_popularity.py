"""Extension bench: popularity-guided prefetching (§6.3).

The paper suggests collecting "fine-grained popularity of each request
or item" to prefetch more effectively.  This bench compares the Wish
user-study run with and without a top-K popularity policy on the
successor signatures: the policy should cut prefetch bytes
substantially while giving up little of the latency win.
"""

from conftest import banner, run_once

from repro.device.traces import generate_user_study, replay_trace
from repro.experiments.scenario import Scenario, prepare_app
from repro.metrics.stats import median


def run_variant(top_k, participants=8):
    prepared = prepare_app("wish")
    scenario = Scenario(
        prepared,
        proxied=True,
        enabled_classes=prepared.spec.main_site_classes,
        max_chain_depth=1,
    )
    if top_k is not None:
        for signature in prepared.analysis.prefetchable():
            scenario.proxy.config.policy(signature.site).popularity_top_k = top_k
    traces = generate_user_study(prepared.apk, participants=participants, seed=31)
    results = []

    def replay_all():
        processes = [
            scenario.sim.spawn(replay_trace(scenario.runtime(t.user), t))
            for t in traces
        ]
        collected = []
        for process in processes:
            collected.append((yield process))
        return collected

    results = scenario.sim.run_process(replay_all())
    latencies = [
        r.latency
        for user_results in results
        for r in user_results
        if r.event == prepared.spec.main_event
    ]
    return {
        "median_latency": median(latencies) if latencies else 0.0,
        "prefetch_bytes": scenario.proxy.prefetcher.prefetch_bytes,
        "served": scenario.proxy.served_prefetched,
        "skipped_popularity": scenario.proxy.prefetcher.skipped_popularity,
    }


def run_all():
    return {
        "unrestricted": run_variant(None),
        "top-8": run_variant(8),
        "top-3": run_variant(3),
    }


def test_extension_popularity(benchmark):
    stats = run_once(benchmark, run_all)
    banner("Extension (§6.3) — popularity-guided prefetching on Wish")
    print(
        "{:<14} {:>12} {:>16} {:>8} {:>10}".format(
            "variant", "median", "prefetch bytes", "served", "skipped"
        )
    )
    for name in ("unrestricted", "top-8", "top-3"):
        row = stats[name]
        print(
            "{:<14} {:>10.0f}ms {:>16,} {:>8} {:>10}".format(
                name, 1000 * row["median_latency"], row["prefetch_bytes"],
                row["served"], row["skipped_popularity"],
            )
        )
    assert stats["top-3"]["prefetch_bytes"] < stats["unrestricted"]["prefetch_bytes"]
    assert stats["top-3"]["skipped_popularity"] > 0
    # the latency cost of trimming the tail stays modest (< 2x median)
    assert stats["top-3"]["median_latency"] <= 2.5 * max(
        stats["unrestricted"]["median_latency"], 1e-9
    )
