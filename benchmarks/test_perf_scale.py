"""Serving-core scale benchmark: per-request wall cost vs population.

Sweeps the ``repro scale`` open-loop harness over N ∈ {100, 1k, 10k}
users sharing one :class:`MultiAppProxy`, holding the expected request
volume per cell constant (duration ∝ 1/N) so the cells compare
per-request *cost*, not workload size.  The tentpole claim asserted
here: with the sharded timer-wheel cache and the lazy prefetch drain,
serving cost is population-independent — per-request wall time at 10k
users stays within 2× of the 100-user cell.

A second section runs the three-way strategy comparison (appx /
history / none) on one identical session-consistent workload and
asserts prefetching actually pays: appx hit rate above 20%, p50 and
p95 strictly below the no-prefetch baseline, and a thrash ratio
(evictions / stores) under 0.5.  Both sections land in
``BENCH_scale.json`` at the repo root as the trajectory artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest
from conftest import banner, run_once

from repro.experiments.fleet import (
    FleetWorkerError,
    format_fleet_table,
    run_fleet,
)
from repro.experiments.scale import (
    format_strategy_table,
    run_scale_sweep,
    run_strategy_comparison,
)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_scale.json"
TABLES = Path(__file__).resolve().parent.parent / "bench_tables.txt"
BUDGETS = Path(__file__).resolve().parent / "perf_budgets.json"
USER_COUNTS = [100, 1_000, 10_000, 100_000]
#: expected arrivals per cell = users * rate * duration = 500 for all N
DURATIONS = {100: 10.0, 1_000: 1.0, 10_000: 0.1, 100_000: 0.01}
RATE = 0.5
MAX_ENTRIES_PER_USER = 32

#: fleet scale-out sweep: worker counts capped at the host's cores
FLEET_WORKER_COUNTS = [1, 2, 4]
FLEET_USERS = 2_000
FLEET_DURATION = 2.0  # ~2000 expected arrivals per fleet cell
FLEET_SPEEDUP_GATE = 1.8

#: strategy-comparison workload: long enough for sessions to cycle and
#: the admission gate to warm up, small enough to stay a smoke test
COMPARE_USERS = 10
COMPARE_DURATION = 40.0
COMPARE_RATE = 1.0
COMPARE_SEED = 5
ADMISSION_THRESHOLD = 0.2


def test_perf_scale(benchmark):
    result = run_once(
        benchmark,
        run_scale_sweep,
        USER_COUNTS,
        duration_for=DURATIONS,
        rate_per_user=RATE,
        seed=0,
        max_entries_per_user=MAX_ENTRIES_PER_USER,
        telemetry=True,
    )

    banner("Serving core at scale: per-request cost vs user population")
    print(
        "{:>8} {:>9} {:>9} {:>12} {:>10} {:>8} {:>8} {:>9} {:>9} "
        "{:>8} {:>7} {:>6}".format(
            "users", "requests", "wall_s", "us/request", "events/s",
            "p50_ms", "p99_ms", "peak_ent", "rss_mb",
            "w_p99", "w_hit%", "w_ovf",
        )
    )
    for row in result["rows"]:
        readings = (row.get("live") or {}).get("readings") or {}
        print(
            "{:>8} {:>9} {:>9.3f} {:>12.1f} {:>10.0f} {:>8.1f} {:>8.1f} "
            "{:>9} {:>9.1f} {:>8.1f} {:>7.2f} {:>6}".format(
                row["users"],
                row["requests"],
                row["wall_s"],
                row["per_request_wall_us"],
                row["sim_events_per_wall_s"],
                row["latency_p50_ms"],
                row["latency_p99_ms"],
                row["peak_cache_entries"],
                row["peak_rss_bytes"] / 1e6,
                readings.get("request_p99_ms", float("nan")),
                100.0 * readings.get("hit_rate", float("nan")),
                readings.get("overflow", 0),
            )
        )
    derived = result["derived"]
    print(
        "per-request wall cost at {} users: {:.2f}x the {}-user cost".format(
            derived["largest_users"],
            derived["per_request_cost_ratio"],
            derived["smallest_users"],
        )
    )

    rows = {row["users"]: row for row in result["rows"]}
    assert set(rows) == set(USER_COUNTS)
    # every cell actually served a comparable workload
    for row in rows.values():
        assert row["requests"] > 200
        assert row["requests"] == row["requests_sent"]

    # the tentpole claim: serving cost does not grow with the user
    # population.  2x is a loose ceiling over run-to-run noise; the
    # measured ratio is ~1x
    assert derived["per_request_cost_ratio"] < 2.0

    # the live telemetry plane rode along on every cell: readings
    # exist and the windowed request count never exceeds the run total
    for row in rows.values():
        readings = row["live"]["readings"]
        assert 0 < readings["requests"] <= row["requests"]
        assert readings["request_p99_ms"] > 0

    # the per-user bound held: no cell's cache outgrew users * bound
    for row in rows.values():
        assert row["peak_cache_entries"] <= row["users"] * MAX_ENTRIES_PER_USER
    # the bound did real work — prefetch fan-out exceeds 32
    # entries/user, so LRU evictions must have fired
    assert rows[100]["cache_lru_evictions"] > 0

    # ------------------------------------------------------------------
    # strategy comparison: does prefetching pay for itself?
    # ------------------------------------------------------------------
    comparison = run_strategy_comparison(
        COMPARE_USERS,
        COMPARE_DURATION,
        rate_per_user=COMPARE_RATE,
        seed=COMPARE_SEED,
        admission_threshold=ADMISSION_THRESHOLD,
        estimate_expiration=True,
    )
    banner("Prefetch strategy comparison on one identical workload")
    print(format_strategy_table(comparison))

    baseline = comparison["rows"]["none"]
    appx = comparison["rows"]["appx"]
    derived = comparison["derived"]["appx"]
    # every strategy served the exact same seeded workload
    for row in comparison["rows"].values():
        assert row["requests"] == baseline["requests"]
    # prefetch efficacy: the paper's claim, now measured
    assert derived["hit_rate"] >= 0.2
    assert appx["latency_p50_ms"] < baseline["latency_p50_ms"]
    assert appx["latency_p95_ms"] <= baseline["latency_p95_ms"]
    # hit-aware admission keeps the cache from thrashing
    assert derived["thrash_ratio"] < 0.5
    assert appx["skipped_admission"] > 0
    # the expiration estimator converged on live signatures
    assert appx["expiration"]["converged"] > 0

    # ------------------------------------------------------------------
    # learn-tail perf budget: the committed ceiling CI also enforces
    # ------------------------------------------------------------------
    budgets = json.loads(BUDGETS.read_text())
    learn = rows[1_000]["stage_latency_us"].get("proxy.learn")
    assert learn is not None, "no proxy.learn stage samples in the 1k cell"
    budget_us = budgets["proxy.learn"]["p99_us"]
    print(
        "proxy.learn p99 at 1k users: {:.0f}us (budget {:.0f}us)".format(
            learn["p99_us"], budget_us
        )
    )
    assert learn["p99_us"] <= budget_us, (
        "proxy.learn p99 {:.0f}us blew the committed {:.0f}us budget — "
        "either a regression or time to re-baseline "
        "benchmarks/perf_budgets.json".format(learn["p99_us"], budget_us)
    )

    result["strategy_comparison"] = comparison
    _merge_artifact(result)
    print("wrote {}".format(ARTIFACT.name))


def _merge_artifact(update: dict) -> None:
    """Fold new sections into BENCH_scale.json without dropping others."""
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except ValueError:
            data = {}
    data.update(update)
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_perf_fleet(benchmark):
    """Sharded fleet scale-out: requests/wall-s vs worker count.

    Sweeps ``--workers`` ∈ {1, 2, 4} (capped at the host's cores) over
    one seeded workload.  On hosts with ≥4 cores the 4-worker cell must
    clear ``FLEET_SPEEDUP_GATE`` (1.8x) over 1 worker — near-linear
    scale-out minus supervisor fold-back overhead.  On smaller hosts
    the measurement still runs and lands in the artifact, but the gate
    **skips** (a pass would claim evidence the host cannot produce).
    A worker failure is recorded as a failed BENCH row before the
    test errors, so the artifact shows the run happened and died.
    """
    cores = os.cpu_count() or 1
    worker_counts = [w for w in FLEET_WORKER_COUNTS if w <= cores] or [1]

    def sweep():
        rows = []
        for workers in worker_counts:
            rows.append(
                run_fleet(
                    FLEET_USERS,
                    FLEET_DURATION,
                    workers=workers,
                    rate_per_user=RATE,
                    seed=0,
                    max_entries_per_user=MAX_ENTRIES_PER_USER,
                )
            )
        return rows

    try:
        rows = run_once(benchmark, sweep)
    except FleetWorkerError as error:
        _merge_artifact(
            {
                "fleet": {
                    "failed": True,
                    "error": str(error).splitlines()[0],
                    "shards": list(error.shards),
                    "worker_counts": worker_counts,
                }
            }
        )
        raise

    banner("Sharded proxy fleet: scale-out vs worker count")
    table = format_fleet_table(rows)
    print(table)
    with TABLES.open("a") as handle:
        handle.write(table + "\n")

    by_workers = {row["workers"]: row for row in rows}
    base = by_workers[1]
    # every cell served the identical partitioned arrival schedule
    for row in rows:
        assert row["requests_sent"] == base["requests_sent"]
        assert row["requests"] == base["requests"]
        assert sum(row["fleet"]["shard_requests"]) == row["requests"]

    speedup = (
        by_workers[max(worker_counts)]["requests_per_wall_s"]
        / base["requests_per_wall_s"]
    )
    _merge_artifact(
        {
            "fleet": {
                "failed": False,
                "cores": cores,
                "worker_counts": worker_counts,
                "speedup_at_max_workers": speedup,
                "rows": rows,
            }
        }
    )
    print("wrote fleet section to {}".format(ARTIFACT.name))

    if cores < 4 or 4 not in worker_counts:
        pytest.skip(
            "scale-out gate needs >=4 cores (host has {}); measured "
            "{}-worker speedup {:.2f}x unasserted".format(
                cores, max(worker_counts), speedup
            )
        )
    assert speedup >= FLEET_SPEEDUP_GATE, (
        "fleet speedup {:.2f}x at {} workers is below the {:.1f}x "
        "gate".format(speedup, max(worker_counts), FLEET_SPEEDUP_GATE)
    )
