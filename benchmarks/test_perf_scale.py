"""Serving-core scale benchmark: per-request wall cost vs population.

Sweeps the ``repro scale`` open-loop harness over N ∈ {100, 1k, 10k}
users sharing one :class:`MultiAppProxy`, holding the expected request
volume per cell constant (duration ∝ 1/N) so the cells compare
per-request *cost*, not workload size.  The tentpole claim asserted
here: with the sharded timer-wheel cache and the lazy prefetch drain,
serving cost is population-independent — per-request wall time at 10k
users stays within 2× of the 100-user cell.

A second section runs the three-way strategy comparison (appx /
history / none) on one identical session-consistent workload and
asserts prefetching actually pays: appx hit rate above 20%, p50 and
p95 strictly below the no-prefetch baseline, and a thrash ratio
(evictions / stores) under 0.5.  Both sections land in
``BENCH_scale.json`` at the repo root as the trajectory artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

from conftest import banner, run_once

from repro.experiments.scale import (
    format_strategy_table,
    run_scale_sweep,
    run_strategy_comparison,
)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_scale.json"
USER_COUNTS = [100, 1_000, 10_000]
#: expected arrivals per cell = users * rate * duration = 500 for all N
DURATIONS = {100: 10.0, 1_000: 1.0, 10_000: 0.1}
RATE = 0.5
MAX_ENTRIES_PER_USER = 32

#: strategy-comparison workload: long enough for sessions to cycle and
#: the admission gate to warm up, small enough to stay a smoke test
COMPARE_USERS = 10
COMPARE_DURATION = 40.0
COMPARE_RATE = 1.0
COMPARE_SEED = 5
ADMISSION_THRESHOLD = 0.2


def test_perf_scale(benchmark):
    result = run_once(
        benchmark,
        run_scale_sweep,
        USER_COUNTS,
        duration_for=DURATIONS,
        rate_per_user=RATE,
        seed=0,
        max_entries_per_user=MAX_ENTRIES_PER_USER,
    )

    banner("Serving core at scale: per-request cost vs user population")
    print(
        "{:>8} {:>9} {:>9} {:>12} {:>10} {:>8} {:>8} {:>9} {:>9}".format(
            "users", "requests", "wall_s", "us/request", "events/s",
            "p50_ms", "p99_ms", "peak_ent", "rss_mb",
        )
    )
    for row in result["rows"]:
        print(
            "{:>8} {:>9} {:>9.3f} {:>12.1f} {:>10.0f} {:>8.1f} {:>8.1f} "
            "{:>9} {:>9.1f}".format(
                row["users"],
                row["requests"],
                row["wall_s"],
                row["per_request_wall_us"],
                row["sim_events_per_wall_s"],
                row["latency_p50_ms"],
                row["latency_p99_ms"],
                row["peak_cache_entries"],
                row["peak_rss_bytes"] / 1e6,
            )
        )
    derived = result["derived"]
    print(
        "per-request wall cost at {} users: {:.2f}x the {}-user cost".format(
            derived["largest_users"],
            derived["per_request_cost_ratio"],
            derived["smallest_users"],
        )
    )

    rows = {row["users"]: row for row in result["rows"]}
    assert set(rows) == set(USER_COUNTS)
    # every cell actually served a comparable workload
    for row in rows.values():
        assert row["requests"] > 200
        assert row["requests"] == row["requests_sent"]

    # the tentpole claim: serving cost does not grow with the user
    # population.  2x is a loose ceiling over run-to-run noise; the
    # measured ratio is ~1x
    assert derived["per_request_cost_ratio"] < 2.0

    # the per-user bound held: no cell's cache outgrew users * bound
    for row in rows.values():
        assert row["peak_cache_entries"] <= row["users"] * MAX_ENTRIES_PER_USER
    # the bound did real work — prefetch fan-out exceeds 32
    # entries/user, so LRU evictions must have fired
    assert rows[100]["cache_lru_evictions"] > 0

    # ------------------------------------------------------------------
    # strategy comparison: does prefetching pay for itself?
    # ------------------------------------------------------------------
    comparison = run_strategy_comparison(
        COMPARE_USERS,
        COMPARE_DURATION,
        rate_per_user=COMPARE_RATE,
        seed=COMPARE_SEED,
        admission_threshold=ADMISSION_THRESHOLD,
        estimate_expiration=True,
    )
    banner("Prefetch strategy comparison on one identical workload")
    print(format_strategy_table(comparison))

    baseline = comparison["rows"]["none"]
    appx = comparison["rows"]["appx"]
    derived = comparison["derived"]["appx"]
    # every strategy served the exact same seeded workload
    for row in comparison["rows"].values():
        assert row["requests"] == baseline["requests"]
    # prefetch efficacy: the paper's claim, now measured
    assert derived["hit_rate"] >= 0.2
    assert appx["latency_p50_ms"] < baseline["latency_p50_ms"]
    assert appx["latency_p95_ms"] <= baseline["latency_p95_ms"]
    # hit-aware admission keeps the cache from thrashing
    assert derived["thrash_ratio"] < 0.5
    assert appx["skipped_admission"] > 0
    # the expiration estimator converged on live signatures
    assert appx["expiration"]["converged"] > 0

    result["strategy_comparison"] = comparison
    ARTIFACT.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print("wrote {}".format(ARTIFACT.name))
