"""Table 1: description of apps and main interactions."""

from conftest import banner, run_once

from repro.experiments import runner

PAPER = [
    ("Wish", "Shopping", "Loads an item detail"),
    ("Geek", "Shopping", "Loads an item detail"),
    ("DoorDash", "Food delivery", "Loads a restaurant info."),
    ("Purple Ocean", "Psychic reading", "Loads an advisor page"),
    ("Postmates", "Food delivery", "Loads a restaurant info."),
]


def test_table1_apps(benchmark):
    rows = run_once(benchmark, runner.table1_rows)
    banner("Table 1 — Description of apps and main interactions")
    print("{:<14} {:<16} {:<28} | paper".format("App", "Category", "Main interaction"))
    for row, paper in zip(rows, PAPER):
        print(
            "{:<14} {:<16} {:<28} | {} / {} / {}".format(
                row["app"], row["category"], row["main_interaction"], *paper
            )
        )
    assert [(r["app"], r["category"], r["main_interaction"]) for r in rows] == PAPER
