"""Fig. 15: 90th-percentile main-interaction latency from user traces.

Paper: proxy↔server RTT swept over {50, 100, 150} ms; reductions range
14–64% and grow with the RTT (the proxy effectively moves the content
closer to the client).
"""

from conftest import banner, run_once

from repro.experiments import runner

#: paper's per-app reductions at 50/100/150 ms
PAPER = {
    "Wish": (0.36, 0.54, 0.55),
    "Geek": (0.37, 0.56, 0.64),
    "DoorDash": (0.23, 0.31, 0.43),
    "Purple Ocean": (0.19, 0.41, 0.51),
    "Postmates": (0.14, 0.31, 0.28),
}


def test_fig15_percentile_sweep(benchmark):
    rows = run_once(
        benchmark, runner.fig15_percentile_sweep,
        rtts=(0.050, 0.100, 0.150), participants=10,
    )
    banner("Fig. 15 — 90%-tile latency vs proxy↔server RTT (user traces)")
    print(
        "{:<14} {:>6} {:>10} {:>10} {:>6} | paper red.".format(
            "App", "RTT", "Orig p90", "APPx p90", "red."
        )
    )
    by_app = {}
    for row in rows:
        reductions = PAPER[row["app"]]
        index = {50: 0, 100: 1, 150: 2}[row["rtt_ms"]]
        print(
            "{:<14} {:>4}ms {:>9.2f}s {:>9.2f}s {:>5.0f}% | {:.0f}%".format(
                row["app"], row["rtt_ms"], row["orig_p90"], row["appx_p90"],
                100 * row["reduction"], 100 * reductions[index],
            )
        )
        by_app.setdefault(row["app"], {})[row["rtt_ms"]] = row["reduction"]
        assert row["appx_p90"] <= row["orig_p90"]
    for app, reductions in by_app.items():
        # reductions grow (weakly) with the proxy↔server RTT
        assert reductions[150] >= reductions[50] - 0.02
