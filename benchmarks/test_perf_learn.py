"""Learn-tail benchmark: the deferred pipeline vs the inline oracle.

Stage timings motivated this PR: ``proxy.learn`` p99 ≈ 4,900µs inline
against ~30µs dispatch — run-time value learning plus successor
instantiation dominated the request path by two orders of magnitude on
slow requests.  Section 1 serves one identical 1k-user open-loop
workload twice, once per learn mode, and asserts the deferred request
path cuts ``proxy.learn`` p99 by at least 3× (the work moves to the
budgeted ``proxy.learn_drain`` stage, off the response-critical path)
while producing the same served workload.  Section 2 micro-benchmarks
copy-on-write instantiation: N replicated instances building through
the shared :class:`SignatureBuildPlan` vs the seed's per-build atom
walk, reported as replicas/µs.  Both sections land in
``BENCH_learn.json``; the headline row appends to ``bench_tables.txt``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import banner, run_once

from repro.analysis.model import (
    ConstAtom,
    DepAtom,
    RequestTemplate,
    ResponseTemplate,
    TransactionSignature,
    UnknownAtom,
    ValueTemplate,
)
from repro.experiments.scale import run_scale
from repro.httpmsg.fieldpath import FieldPath
from repro.proxy.instances import (
    RequestInstance,
    RuntimeSignature,
    ValueStore,
)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_learn.json"
TABLES = Path(__file__).resolve().parent.parent / "bench_tables.txt"
BUDGETS = Path(__file__).resolve().parent / "perf_budgets.json"

USERS = 1_000
DURATION = 1.0  # ~500 expected arrivals, matching the scale bench cell
RATE = 0.5
SEED = 0
#: the acceptance gate: deferred request-path learn p99 vs inline
SPEEDUP_GATE = 3.0

#: COW micro-bench: replicas per spawn burst × bursts
REPLICAS = 200
BURSTS = 25


def _learn_stages(row):
    stages = row["stage_latency_us"]
    return {
        stage: {
            "p50_us": stats["p50_us"],
            "p99_us": stats["p99_us"],
            "count": stats["count"],
        }
        for stage, stats in stages.items()
        if stage in ("proxy.dispatch", "proxy.learn", "proxy.learn_drain")
    }


def test_perf_learn_modes(benchmark):
    def sweep():
        rows = {}
        for mode in ("inline", "deferred"):
            rows[mode] = run_scale(
                USERS,
                DURATION,
                rate_per_user=RATE,
                seed=SEED,
                learn_mode=mode,
            )
        return rows

    rows = run_once(benchmark, sweep)
    inline, deferred = rows["inline"], rows["deferred"]

    banner("Learn tail: request-path proxy.learn, inline vs deferred")
    print(
        "{:>10} {:>9} {:>10} {:>10} {:>12} {:>12} {:>8}".format(
            "mode", "requests", "learn_p50", "learn_p99",
            "drain_p50", "drain_p99", "hit",
        )
    )
    for mode, row in rows.items():
        stages = row["stage_latency_us"]
        learn = stages["proxy.learn"]
        drain = stages.get("proxy.learn_drain")
        print(
            "{:>10} {:>9} {:>9.1f}u {:>9.1f}u {:>11} {:>11} {:>7.0f}%".format(
                mode,
                row["requests"],
                learn["p50_us"],
                learn["p99_us"],
                "{:.1f}u".format(drain["p50_us"]) if drain else "-",
                "{:.1f}u".format(drain["p99_us"]) if drain else "-",
                100 * row["hit_rate"],
            )
        )

    # both modes served the identical seeded workload, with the same
    # outcome — deferral moves work, it must not change results
    assert deferred["requests"] == inline["requests"]
    assert deferred["served_prefetched"] == inline["served_prefetched"]
    assert deferred["prefetch_issued"] == inline["prefetch_issued"]
    assert deferred["hit_rate"] == inline["hit_rate"]
    # the bounded queue never overflowed under the per-request pump
    assert deferred["learn_queue_overflows"] == 0
    assert deferred["learn_deferred_drained"] > 0

    inline_p99 = inline["stage_latency_us"]["proxy.learn"]["p99_us"]
    deferred_p99 = deferred["stage_latency_us"]["proxy.learn"]["p99_us"]
    speedup = inline_p99 / deferred_p99 if deferred_p99 else float("inf")
    print(
        "request-path proxy.learn p99: inline {:.0f}us -> deferred {:.0f}us "
        "({:.1f}x)".format(inline_p99, deferred_p99, speedup)
    )
    assert speedup >= SPEEDUP_GATE, (
        "deferred proxy.learn p99 {:.0f}us is only {:.1f}x below inline "
        "{:.0f}us (gate {:.1f}x)".format(
            deferred_p99, speedup, inline_p99, SPEEDUP_GATE
        )
    )

    # the tightened committed budget must hold in the default mode
    budgets = json.loads(BUDGETS.read_text())
    budget_us = budgets["proxy.learn"]["p99_us"]
    assert deferred_p99 <= budget_us, (
        "deferred proxy.learn p99 {:.0f}us blew the committed {:.0f}us "
        "budget".format(deferred_p99, budget_us)
    )

    section = {
        "users": USERS,
        "duration_s": DURATION,
        "seed": SEED,
        "modes": {mode: _learn_stages(row) for mode, row in rows.items()},
        "request_path_p99_speedup": speedup,
        "budget_p99_us": budget_us,
        "queue": {
            "overflows": deferred["learn_queue_overflows"],
            "drained": deferred["learn_deferred_drained"],
        },
    }
    _merge_artifact({"learn_modes": section})

    table = (
        "learn tail: inline p99 {:.0f}us -> deferred p99 {:.0f}us "
        "({:.1f}x, gate {:.0f}x, budget {:.0f}us) at {} users\n".format(
            inline_p99, deferred_p99, speedup, SPEEDUP_GATE, budget_us, USERS
        )
    )
    with TABLES.open("a") as handle:
        handle.write(table)
    print("wrote {}".format(ARTIFACT.name))


def _replica_signature() -> RuntimeSignature:
    """A successor shaped like the real apps': const + dep + env fields."""
    fields = {
        FieldPath.parse("header.Cookie"): ValueTemplate(
            [UnknownAtom("env:cookie")]
        ),
        FieldPath.parse("body.cid"): ValueTemplate(
            [DepAtom("pred#0", FieldPath.parse("body.items[].id"))]
        ),
        FieldPath.parse("body.v"): ValueTemplate.const("7"),
        FieldPath.parse("body.channel"): ValueTemplate.const("android"),
        FieldPath.parse("body._ver"): ValueTemplate(
            [UnknownAtom("env:config:version")]
        ),
    }
    request = RequestTemplate(
        method="POST",
        uri=ValueTemplate(
            [UnknownAtom("env:config:api_host"), ConstAtom("/detail")]
        ),
        fields=fields,
        body_kind="form",
    )
    return RuntimeSignature(
        TransactionSignature("succ#0", request, ResponseTemplate())
    )


def _spawn_and_build(signature, store, use_plan: bool) -> int:
    built = 0
    for burst in range(BURSTS):
        for index in range(REPLICAS):
            instance = RequestInstance(signature, "u1")
            instance.fill(
                FieldPath.parse("body.cid"), "c{}-{}".format(burst, index)
            )
            request = instance.build(store, use_plan=use_plan)
            if request is not None:
                built += 1
    return built


def test_perf_cow_instantiation(benchmark):
    store = ValueStore()
    store.learn_tag("u1", "env:cookie", "bsid=fresh")
    store.learn_tag("u1", "env:config:version", "9.9")
    store.learn_tag("u1", "env:config:api_host", "https://api.test.com")
    signature = _replica_signature()
    total = REPLICAS * BURSTS

    def measure():
        results = {}
        for use_plan in (False, True):
            started = time.perf_counter()
            built = _spawn_and_build(signature, store, use_plan)
            elapsed = time.perf_counter() - started
            assert built == total
            results["plan" if use_plan else "naive"] = {
                "replicas": total,
                "wall_s": elapsed,
                "replicas_per_us": total / (1e6 * elapsed),
            }
        return results

    results = run_once(benchmark, measure)

    banner("Copy-on-write instantiation: shared build plan vs naive walk")
    print(
        "{:>8} {:>9} {:>10} {:>14}".format(
            "path", "replicas", "wall_ms", "replicas/us"
        )
    )
    for path, cell in results.items():
        print(
            "{:>8} {:>9} {:>10.2f} {:>14.3f}".format(
                path, cell["replicas"], 1e3 * cell["wall_s"],
                cell["replicas_per_us"],
            )
        )
    speedup = results["plan"]["replicas_per_us"] / results["naive"]["replicas_per_us"]
    print("plan path builds {:.2f}x the replicas per microsecond".format(speedup))

    # the shared plan must never lose to the per-build atom walk it
    # replaced; 0.9 tolerates host noise on an already-fast path
    assert speedup >= 0.9, (
        "plan-based build is {:.2f}x the naive rate — the COW plan "
        "regressed instantiation".format(speedup)
    )

    _merge_artifact({"cow_instantiation": {**results, "speedup": speedup}})
    with TABLES.open("a") as handle:
        handle.write(
            "cow instantiation: plan {:.3f} vs naive {:.3f} replicas/us "
            "({:.2f}x) over {} replicas\n".format(
                results["plan"]["replicas_per_us"],
                results["naive"]["replicas_per_us"],
                speedup,
                total,
            )
        )


def _merge_artifact(update: dict) -> None:
    """Fold new sections into BENCH_learn.json without dropping others."""
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except ValueError:
            data = {}
    data.update(update)
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
