"""Ablations on the proxy design choices.

1. **Dynamic learning vs static-only** (the PALOMA comparison, §7): a
   proxy that cannot learn run-time values can never reconstruct
   requests whose formats are determined dynamically, so it serves
   (almost) nothing from its prefetch cache.
2. **Priority scheduling vs FIFO** (§5): under a constrained prefetch
   pipe, prioritizing slow-origin/high-hit-rate signatures serves more
   requests from cache.
"""

from conftest import banner, run_once

from repro.device.traces import generate_user_study, replay_trace
from repro.experiments.scenario import Scenario, prepare_app
from repro.proxy.learning import DynamicLearner


def run_trace_scenario(static_only=False, priority=True, max_concurrent=2,
                       participants=6):
    prepared = prepare_app("wish")
    scenario = Scenario(
        prepared,
        proxied=True,
        enabled_classes=prepared.spec.main_site_classes,
        max_chain_depth=1,
    )
    if static_only:
        scenario.proxy.learner = DynamicLearner(
            prepared.analysis, static_only=True, max_depth=1
        )
        scenario.proxy.prefetcher.learner = scenario.proxy.learner
    scenario.proxy.prefetcher.priority_enabled = priority
    scenario.proxy.prefetcher.max_concurrent = max_concurrent
    traces = generate_user_study(prepared.apk, participants=participants, seed=23)

    def replay_all():
        processes = [
            scenario.sim.spawn(replay_trace(scenario.runtime(t.user), t))
            for t in traces
        ]
        for process in processes:
            yield process
        return None

    scenario.sim.run_process(replay_all())
    return scenario.proxy.stats()


def run_all():
    return {
        "dynamic": run_trace_scenario(static_only=False),
        "static-only": run_trace_scenario(static_only=True),
        "priority": run_trace_scenario(priority=True, max_concurrent=2),
        "fifo": run_trace_scenario(priority=False, max_concurrent=2),
    }


def test_ablation_proxy_design(benchmark):
    stats = run_once(benchmark, run_all)
    banner("Ablation — proxy design choices (Wish, user traces)")
    print("{:<14} {:>16} {:>10}".format("variant", "served cached", "issued"))
    for name in ("dynamic", "static-only", "priority", "fifo"):
        print(
            "{:<14} {:>16} {:>10}".format(
                name, stats[name]["served_prefetched"], stats[name]["issued"]
            )
        )
    # PALOMA-style static-only proxies cannot resolve run-time values
    assert stats["static-only"]["served_prefetched"] < stats["dynamic"]["served_prefetched"]
    assert stats["dynamic"]["served_prefetched"] > 0
    # priority scheduling serves at least as much as FIFO under a
    # constrained pipe
    assert stats["priority"]["served_prefetched"] >= stats["fifo"]["served_prefetched"]
