"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and
prints measured rows next to the values the paper reports.  Absolute
numbers are not expected to match (our substrate is a simulator, not
the authors' testbed); the *shape* — who wins, by roughly what factor,
where the knobs move results — is asserted in the test suite and made
eyeballable here.
"""

from __future__ import annotations

from typing import Callable


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
