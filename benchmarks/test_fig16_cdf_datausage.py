"""Fig. 16: latency CDFs and normalized data usage per app per RTT.

Paper: median reductions 17% (252 ms) – 64% (1,471 ms); the proxy uses
1.08–4.17x more data than the no-prefetch baseline (Wish 4.17x, Geek
3.15x, DoorDash 1.74x, Purple Ocean 2.25x, Postmates 1.08x).
"""

from conftest import banner, run_once

from repro.experiments import runner

PAPER_USAGE = {
    "Wish": 4.17,
    "Geek": 3.15,
    "DoorDash": 1.74,
    "Purple Ocean": 2.25,
    "Postmates": 1.08,
}


def test_fig16_cdf_and_usage(benchmark):
    rows = run_once(
        benchmark, runner.fig16_cdf_and_usage,
        rtts=(0.050, 0.100, 0.150), participants=10,
    )
    banner("Fig. 16 — Median latency CDF points and normalized data usage")
    print(
        "{:<14} {:>6} {:>9} {:>9} {:>6} {:>7} | paper usage".format(
            "App", "RTT", "Orig med", "APPx med", "red.", "usage"
        )
    )
    for row in rows:
        print(
            "{:<14} {:>4}ms {:>8.2f}s {:>8.2f}s {:>5.0f}% {:>6.2f}x | {:.2f}x".format(
                row["app"], row["rtt_ms"], row["orig_median"], row["appx_median"],
                100 * row["median_reduction"], row["normalized_data_usage"],
                PAPER_USAGE[row["app"]],
            )
        )
        assert row["appx_median"] <= row["orig_median"]
        assert 1.0 <= row["normalized_data_usage"] < 20.0
        # CDFs are well-formed and the APPx curve dominates at the median
        assert row["orig_cdf"][-1][1] == 1.0
        assert row["appx_cdf"][-1][1] == 1.0
    # shopping apps pay the most data (large product images), Postmates
    # and DoorDash the least — same ordering as the paper
    usage = {row["app"]: row["normalized_data_usage"] for row in rows if row["rtt_ms"] == 50}
    assert usage["Wish"] > usage["Postmates"]
    assert usage["Geek"] > usage["DoorDash"]
