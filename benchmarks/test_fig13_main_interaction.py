"""Fig. 13: user-perceived latency of the main interaction.

Paper (origin servers, 55 ms / 25 Mbps access):

    Wish          Orig 1.7 s → APPx 0.9 s  (47% lower)
    Geek          Orig 2.4 s → APPx 1.1 s  (54%)
    DoorDash      Orig 2.1 s → APPx 0.9 s  (58%)
    Purple Ocean  Orig 2.5 s → APPx 0.9 s  (62%)
    Postmates     Orig 1.8 s → APPx 0.8 s  (53%)
"""

from conftest import banner, run_once

from repro.experiments import runner

PAPER = {
    "Wish": (1.7, 0.9, 0.47),
    "Geek": (2.4, 1.1, 0.54),
    "DoorDash": (2.1, 0.9, 0.58),
    "Purple Ocean": (2.5, 0.9, 0.62),
    "Postmates": (1.8, 0.8, 0.53),
}


def test_fig13_main_interaction(benchmark):
    rows = run_once(benchmark, runner.fig13_main_interaction, runs=10)
    banner("Fig. 13 — Main-interaction latency (Orig vs APPx)")
    print(
        "{:<14} {:>18} {:>18} {:>6} | paper".format(
            "App", "Orig (net+proc)", "APPx (net+proc)", "red."
        )
    )
    for row in rows:
        orig, appx = row["orig"], row["appx"]
        paper = PAPER[row["app"]]
        print(
            "{:<14} {:>7.2f} ({:.2f}+{:.2f}) {:>7.2f} ({:.2f}+{:.2f}) {:>5.0f}% | {:.1f}->{:.1f} ({:.0f}%)".format(
                row["app"],
                orig["latency"], orig["network"], orig["processing"],
                appx["latency"], appx["network"], appx["processing"],
                100 * row["reduction"],
                paper[0], paper[1], 100 * paper[2],
            )
        )
        # shape: APPx wins everywhere, by a substantial factor
        assert appx["latency"] < orig["latency"]
        assert row["reduction"] > 0.15
        # the network component is where the speedup happens (2.5–8.7x
        # in the paper)
        assert orig["network"] / max(appx["network"], 1e-9) > 1.5
