"""Table 3: signatures and dependency relationships identified.

Paper (APPx / Auto UI fuzzing / User study), per app:

    Wish          120/47/16 sigs   33/8/7 prefetchable   794/78/49 deps  12/5/5 chain
    Geek          118/51/31        45/11/13              388/39/31       10/4/4
    DoorDash       63/29/21        31/10/10              160/30/36        7/3/5
    Purple Ocean  109/25/10        37/4/4                 72/4/6          4/2/2
    Postmates      83/18/14        35/6/8                272/10/16       15/2/3

Our synthetic apps are far smaller than the commercial binaries, so the
absolute counts are an order of magnitude lower; the asserted shape is
the ordering: static analysis > fuzzing ≥ user-study coverage, with
the background-service signatures invisible to both dynamic baselines.
"""

from conftest import banner, run_once

from repro.experiments import runner

PAPER = {
    "Wish": (120, 47, 16),
    "Geek": (118, 51, 31),
    "DoorDash": (63, 29, 21),
    "Purple Ocean": (109, 25, 10),
    "Postmates": (83, 18, 14),
}


def test_table3_signatures(benchmark):
    rows = run_once(
        benchmark, runner.table3_rows, fuzz_duration=600.0, trace_participants=10
    )
    banner("Table 3 — Signatures and dependencies (APPx / UI fuzzing / user study)")
    header = "{:<14} {:>14} {:>14} {:>14} {:>11} | paper sigs"
    print(header.format("App", "sigs", "prefetchable", "deps", "max chain"))
    for row in rows:
        appx, fuzz, study = row["appx"], row["fuzzing"], row["user_study"]
        print(
            "{:<14} {:>4}/{:>3}/{:>3} {:>6}/{:>3}/{:>3} {:>6}/{:>3}/{:>3} {:>5}/{:>2}/{:>2} | {}/{}/{}".format(
                row["app"],
                appx["signatures"], fuzz["signatures"], study["signatures"],
                appx["prefetchable"], fuzz["prefetchable"], study["prefetchable"],
                appx["dependencies"], fuzz["dependencies"], study["dependencies"],
                appx["max_chain"], fuzz["max_chain"], study["max_chain"],
                *PAPER[row["app"]],
            )
        )
        assert appx["signatures"] > fuzz["signatures"]
        assert appx["signatures"] >= study["signatures"]
        assert appx["dependencies"] >= fuzz["dependencies"]
        assert appx["max_chain"] >= fuzz["max_chain"]
