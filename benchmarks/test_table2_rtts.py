"""Table 2: transactions of the main interaction and RTT to origins."""

from conftest import banner, run_once

from repro.experiments import runner

PAPER_MS = {
    ("Wish", "Product detail"): 165,
    ("Wish", "Product image"): 16,
    ("Geek", "Product detail"): 165,
    ("Geek", "Product image"): 6,
    ("DoorDash", "Menu"): 145,
    ("DoorDash", "Restaurant schedule"): 145,
    ("Purple Ocean", "Advisor information"): 230,
    ("Purple Ocean", "Profile image"): 15,
    ("Purple Ocean", "Video still image"): 15,
    ("Postmates", "Restaurant menu & info"): 5,
}


def test_table2_rtts(benchmark):
    rows = run_once(benchmark, runner.table2_rows)
    banner("Table 2 — Transactions of main interaction and RTT to origin servers")
    print("{:<14} {:<26} {:>8} | paper".format("App", "Transaction", "RTT(ms)"))
    for row in rows:
        paper = PAPER_MS[(row["app"], row["transaction"])]
        print(
            "{:<14} {:<26} {:>8} | {}".format(
                row["app"], row["transaction"], row["rtt_ms"], paper
            )
        )
        assert row["rtt_ms"] == paper
